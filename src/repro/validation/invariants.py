"""Declarative registry of paper-trend invariants.

Baseline comparison (:mod:`repro.validation.stats`) answers "did the
numbers move since the golden capture?".  This module answers the stronger
question: "does the reproduction still exhibit the paper's *trends*?"  Each
:class:`Invariant` encodes one claim from the source paper as a predicate
over a figure's assembled result object, with a threshold calibrated for
the reduced-scale validation grids (generous relative to the paper's
full-scale effect sizes, so seed noise cannot flip a healthy tree):

* Figures 6/7 -- ECN# improves short-flow average FCT over DCTCP-RED-Tail
  and stays near parity on large flows;
* Figure 8 -- the short-flow p99 gain does not shrink as RTT variation
  grows;
* Figure 10 -- ECN# collapses the persistent queue RED-Tail leaves behind;
* Figure 11 -- CoDel's query collapse onset is inside the sweep and
  earlier than ECN#'s;
* Figure 12 -- ECN# is insensitive to its parameters (bounded FCT spread).

Verdicts are machine-readable (:class:`InvariantVerdict`), named
``<figure>.<claim>``, and carry the observed value next to the threshold
so a CI failure message stands alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..experiments.faults import is_failure
from .stats import FAIL, PASS, SKIP

__all__ = ["Invariant", "InvariantVerdict", "REGISTRY", "evaluate_figure"]

# A check returns (ok, observed value, detail); ok=None means SKIP.
CheckResult = Tuple[Optional[bool], Optional[float], str]


@dataclass(frozen=True)
class Invariant:
    """One paper-trend assertion over an assembled figure result."""

    name: str
    figure: str
    description: str
    threshold: float
    check: Callable[[object, float], CheckResult]


@dataclass(frozen=True)
class InvariantVerdict:
    """Machine-readable outcome of one invariant evaluation."""

    name: str
    figure: str
    status: str
    value: Optional[float]
    threshold: float
    detail: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "figure": self.figure,
            "status": self.status,
            "value": self.value,
            "threshold": self.threshold,
            "detail": self.detail,
        }


# ------------------------------------------------------------- fig6 / fig7


def _check_short_avg_gain(result, threshold: float) -> CheckResult:
    if "ECN#" not in result.schemes or "DCTCP-RED-Tail" not in result.schemes:
        return None, None, "grid lacks ECN# or DCTCP-RED-Tail"
    gain = result.best_short_avg_gain("ECN#")
    if gain is None:
        return None, None, "no short-flow data"
    ok = gain >= threshold
    return ok, gain, (
        f"best short-flow avg FCT gain of ECN# vs RED-Tail = {gain:.1%} "
        f"(require >= {threshold:.1%})"
    )


def _check_large_flow_parity(result, threshold: float) -> CheckResult:
    if "ECN#" not in result.schemes or "DCTCP-RED-Tail" not in result.schemes:
        return None, None, "grid lacks ECN# or DCTCP-RED-Tail"
    worst: Optional[float] = None
    for load in result.loads:
        ratio = result.normalized(load, "ECN#").large_avg
        if ratio is not None and (worst is None or ratio > worst):
            worst = ratio
    if worst is None:
        return None, None, "no large-flow data at this scale"
    ok = worst <= threshold
    return ok, worst, (
        f"worst ECN#/RED-Tail large-flow avg FCT ratio = {worst:.2f} "
        f"(require <= {threshold:.2f})"
    )


# -------------------------------------------------------------------- fig8


def _fig8_mean_gain(result, variation: float) -> Optional[float]:
    gains = []
    for load in result.loads:
        nfct = result.nfct(variation, load, "short_p99")
        if nfct is not None:
            gains.append(1.0 - nfct)
    if not gains:
        return None
    return sum(gains) / len(gains)


def _check_gain_grows_with_variation(result, threshold: float) -> CheckResult:
    low, high = min(result.variations), max(result.variations)
    gain_low = _fig8_mean_gain(result, low)
    gain_high = _fig8_mean_gain(result, high)
    if gain_low is None or gain_high is None:
        return None, None, "missing short-p99 data at an endpoint"
    # Noise allowance: the high-variation gain may not *strictly* exceed
    # the low-variation one, but it must not collapse below threshold x it.
    ok = gain_high >= threshold * gain_low
    return ok, gain_high, (
        f"short-p99 gain {gain_low:.1%} at {low:g}x -> {gain_high:.1%} at "
        f"{high:g}x (require gain@{high:g}x >= {threshold:g} * gain@{low:g}x)"
    )


def _check_fig8_overall_parity(result, threshold: float) -> CheckResult:
    worst: Optional[float] = None
    for variation in result.variations:
        for load in result.loads:
            nfct = result.nfct(variation, load, "overall_avg")
            if nfct is not None and (worst is None or nfct > worst):
                worst = nfct
    if worst is None:
        return None, None, "no overall-avg data"
    ok = worst <= threshold
    return ok, worst, (
        f"worst ECN#/RED-Tail overall-avg NFCT = {worst:.2f} "
        f"(require <= {threshold:.2f})"
    )


# ------------------------------------------------------------------- fig10


def _fig10_run(result, scheme: str):
    run = result.runs.get(scheme)
    if run is None or is_failure(run):
        return None
    return run


def _check_persistent_queue_collapse(result, threshold: float) -> CheckResult:
    red = _fig10_run(result, "DCTCP-RED-Tail")
    sharp = _fig10_run(result, "ECN#")
    if red is None or sharp is None:
        return None, None, "missing RED-Tail or ECN# run"
    if red.standing_queue_pkts <= 0:
        return None, None, "RED-Tail built no standing queue"
    ratio = sharp.standing_queue_pkts / red.standing_queue_pkts
    ok = ratio <= threshold
    return ok, ratio, (
        f"ECN# standing queue {sharp.standing_queue_pkts:.1f} pkts vs "
        f"RED-Tail {red.standing_queue_pkts:.1f} pkts, ratio {ratio:.2f} "
        f"(require <= {threshold:.2f})"
    )


def _check_ecn_sharp_floor(result, threshold: float) -> CheckResult:
    sharp = _fig10_run(result, "ECN#")
    if sharp is None:
        return None, None, "missing ECN# run"
    floor = sharp.floor_queue_pkts
    ok = floor <= threshold
    return ok, floor, (
        f"ECN# converged queue floor = {floor:.1f} pkts "
        f"(require <= {threshold:.0f})"
    )


def _check_red_tail_standing(result, threshold: float) -> CheckResult:
    red = _fig10_run(result, "DCTCP-RED-Tail")
    if red is None:
        return None, None, "missing RED-Tail run"
    standing = red.standing_queue_pkts
    ok = standing >= threshold
    return ok, standing, (
        f"RED-Tail standing queue = {standing:.1f} pkts "
        f"(require >= {threshold:.0f}: the tail threshold must leave a "
        "persistent queue for ECN# to collapse)"
    )


# ------------------------------------------------------------------- fig11


def _fig11_collapse_onset(result, scheme: str) -> Optional[int]:
    """First fanout with drops or query timeouts (None: clean sweep)."""
    for fanout in result.fanouts:
        run = result.runs[fanout][scheme]
        if is_failure(run):
            continue
        if run.drops > 0 or run.query_timeouts > 0:
            return fanout
    return None


def _check_codel_collapse_in_sweep(result, threshold: float) -> CheckResult:
    if "CoDel" not in result.schemes:
        return None, None, "grid lacks CoDel"
    onset = _fig11_collapse_onset(result, "CoDel")
    ok = onset is not None and onset <= threshold
    value = float(onset) if onset is not None else None
    return ok, value, (
        f"CoDel first loss/timeout at fanout "
        f"{onset if onset is not None else '>max'} "
        f"(require onset <= {threshold:.0f})"
    )


def _check_ecn_sharp_outlasts_codel(result, threshold: float) -> CheckResult:
    if "CoDel" not in result.schemes or "ECN#" not in result.schemes:
        return None, None, "grid lacks CoDel or ECN#"
    codel = _fig11_collapse_onset(result, "CoDel")
    sharp = _fig11_collapse_onset(result, "ECN#")
    if codel is None:
        return None, None, "CoDel never collapsed in this sweep"
    ok = sharp is None or sharp > codel
    value = float(sharp) if sharp is not None else None
    return ok, value, (
        f"ECN# first loss/timeout at fanout "
        f"{sharp if sharp is not None else '>max'} vs CoDel at {codel} "
        "(require ECN# onset strictly later)"
    )


# ------------------------------------------------------------------- fig12


def _check_sensitivity_spread(result, threshold: float) -> CheckResult:
    spreads = []
    for workload in result.interval_fct:
        for spread in (
            result.interval_spread(workload),
            result.target_spread(workload),
        ):
            if spread is not None:
                spreads.append(spread)
    if not spreads:
        return None, None, "no sensitivity data"
    worst = max(spreads)
    ok = worst <= threshold
    return ok, worst, (
        f"worst overall-FCT spread across ECN# parameter sweeps = "
        f"{worst:.1%} (require <= {threshold:.0%})"
    )


# ---------------------------------------------------------------- registry


def _fct_vs_load_invariants(figure: str) -> Tuple[Invariant, ...]:
    return (
        Invariant(
            name=f"{figure}.short_avg_improvement",
            figure=figure,
            description=(
                "ECN# improves short-flow average FCT over DCTCP-RED-Tail "
                "at some load (paper: up to 23-31%)"
            ),
            threshold=0.02,
            check=_check_short_avg_gain,
        ),
        Invariant(
            name=f"{figure}.large_flow_parity",
            figure=figure,
            description=(
                "ECN# stays near large-flow FCT parity with DCTCP-RED-Tail "
                "(paper: comparable throughput)"
            ),
            threshold=1.15,
            check=_check_large_flow_parity,
        ),
    )


REGISTRY: Dict[str, Tuple[Invariant, ...]] = {
    "fig6": _fct_vs_load_invariants("fig6"),
    "fig7": _fct_vs_load_invariants("fig7"),
    "fig8": (
        Invariant(
            name="fig8.gain_grows_with_variation",
            figure="fig8",
            description=(
                "ECN#'s short-p99 gain over RED-Tail does not shrink as "
                "RTT variation grows (paper: -37% at 3x to -73% at 5x)"
            ),
            threshold=0.8,
            check=_check_gain_grows_with_variation,
        ),
        Invariant(
            name="fig8.overall_parity",
            figure="fig8",
            description=(
                "ECN# keeps overall-average FCT within ~15% of RED-Tail "
                "at every variation (paper: within ~8%)"
            ),
            threshold=1.15,
            check=_check_fig8_overall_parity,
        ),
    ),
    "fig10": (
        Invariant(
            name="fig10.persistent_queue_collapse",
            figure="fig10",
            description=(
                "ECN# collapses the standing queue DCTCP-RED-Tail keeps "
                "near its tail-RTT threshold (paper: ~182 pkt -> ~8 pkt)"
            ),
            threshold=0.4,
            check=_check_persistent_queue_collapse,
        ),
        Invariant(
            name="fig10.ecn_sharp_floor",
            figure="fig10",
            description=(
                "ECN#'s converged (best-5ms-window) queue stays small"
            ),
            threshold=40.0,
            check=_check_ecn_sharp_floor,
        ),
        Invariant(
            name="fig10.red_tail_standing_queue",
            figure="fig10",
            description=(
                "DCTCP-RED-Tail's tail-RTT threshold leaves a substantial "
                "persistent queue (the pathology ECN# removes)"
            ),
            threshold=100.0,
            check=_check_red_tail_standing,
        ),
    ),
    "fig11": (
        Invariant(
            name="fig11.codel_collapse_in_sweep",
            figure="fig11",
            description=(
                "CoDel's query-FCT collapse (first drops/timeouts) occurs "
                "inside the fanout sweep (paper: ~100 senders)"
            ),
            threshold=200.0,
            check=_check_codel_collapse_in_sweep,
        ),
        Invariant(
            name="fig11.ecn_sharp_outlasts_codel",
            figure="fig11",
            description=(
                "ECN# tolerates strictly larger fanouts than CoDel before "
                "losses/timeouts (paper: ~1.75x burst tolerance)"
            ),
            threshold=0.0,
            check=_check_ecn_sharp_outlasts_codel,
        ),
    ),
    "fig12": (
        Invariant(
            name="fig12.sensitivity_spread",
            figure="fig12",
            description=(
                "ECN# overall FCT is insensitive to pst_interval/pst_target "
                "(paper: < ~1% spread; reduced-scale bound is looser)"
            ),
            threshold=0.20,
            check=_check_sensitivity_spread,
        ),
    ),
}
"""Every gated invariant, keyed by figure."""


def evaluate_figure(figure: str, result: object) -> List[InvariantVerdict]:
    """Run every registered invariant of ``figure`` against its assembled
    result object (``None`` when the grid could not assemble it -- each
    invariant then reports SKIP, which the gate treats as non-passing
    only alongside recorded run failures)."""
    verdicts: List[InvariantVerdict] = []
    for invariant in REGISTRY.get(figure, ()):
        if result is None:
            verdicts.append(
                InvariantVerdict(
                    name=invariant.name,
                    figure=figure,
                    status=SKIP,
                    value=None,
                    threshold=invariant.threshold,
                    detail="figure result unavailable (failed cells)",
                )
            )
            continue
        ok, value, detail = invariant.check(result, invariant.threshold)
        status = SKIP if ok is None else (PASS if ok else FAIL)
        verdicts.append(
            InvariantVerdict(
                name=invariant.name,
                figure=figure,
                status=status,
                value=value,
                threshold=invariant.threshold,
                detail=detail,
            )
        )
    return verdicts
