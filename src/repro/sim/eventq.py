"""Pluggable event queues for the DES engine.

The engine's dispatch contract is a total order over events by
``(time, insertion sequence)``: earlier virtual times first, and among
events carrying the same timestamp, the one scheduled first runs first.
Two interchangeable implementations of that contract live here:

:class:`HeapEventQueue`
    The classic binary heap (the seed implementation).  Every event is a
    ``(when, seq, callback, args)`` tuple; ``heappush``/``heappop`` cost
    O(log n) each.  ``events_processed`` is updated per dispatch, so a
    callback can observe a live value mid-run.

:class:`CalendarEventQueue`
    A lazy sorted-batch queue ("calendar" in the bucket-queue sense of
    deferring order work until dispatch time).  Inserts are a plain
    ``list.append`` -- O(1), no comparisons -- into an unsorted *far*
    tier; dispatch peels sorted *batches* of up to :data:`BATCH_EVENTS`
    events off that tier and runs them with a bare ``for`` loop.  For the
    near-monotonic timestamp streams a network DES produces this is
    amortized O(1) per event and roughly 3-4x the heap's throughput in
    CPython, because both the insert and the dispatch path stay inside C
    bytecode fast paths (append / timsort / list iteration) instead of
    paying ~2 log2(n) Python-level comparisons per event.

    Ordering is preserved without storing sequence numbers: events are
    3-tuples ``(when, callback, args)`` and batches are sorted with
    ``list.sort(key=itemgetter(0))`` -- timsort is stable, so insertion
    order is the tie-break, which is exactly the ``(time, sequence)``
    contract.  An event scheduled *inside* the active batch's time window
    (a "straggler") is binary-inserted into the live batch; since its
    time is ``>= now`` and its implicit sequence number is the largest so
    far, its slot is always ahead of the dispatch cursor, and Python's
    index-based list iterators pick up insertions ahead of the cursor.

    Pathological insert patterns (a large fraction of stragglers, e.g. a
    workload that keeps scheduling into a wide active window) degrade the
    binary-insert path toward O(batch) memmoves, so the queue watches the
    straggler ratio and irreversibly converts itself to a heap when it
    crosses :data:`FALLBACK_RATIO` -- correctness never depends on the
    timestamp distribution, only speed does.

    Two deliberate semantic differences from the heap, both documented in
    DESIGN.md: ``events_processed`` is synchronized at batch boundaries
    (not per event) on the fast drain path, and a callback that raises
    mid-batch leaves the dispatch position at the first event of the
    current timestamp (events at exactly ``now`` may be re-dispatched if
    the simulation is resumed after the exception; discard the simulator
    instead).

Selection is by name -- ``"calendar"`` (default) or ``"heap"`` -- via
``Simulator(scheduler=...)`` or the ``REPRO_SCHEDULER`` environment
variable; see :func:`resolve_scheduler`.
"""

from __future__ import annotations

import os
import warnings
from heapq import heappop, heappush
from itertools import islice
from operator import itemgetter
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "SimulationError",
    "SimulationStalled",
    "HeapEventQueue",
    "CalendarEventQueue",
    "SCHEDULER_ENV",
    "SCHEDULER_NAMES",
    "resolve_scheduler",
    "make_event_queue",
]

SCHEDULER_ENV = "REPRO_SCHEDULER"
"""Environment variable selecting the default event queue by name."""

SCHEDULER_NAMES = ("calendar", "heap")

DEFAULT_SCHEDULER = "calendar"

BATCH_EVENTS = 4096
"""Maximum events per dispatch batch.  Large enough to amortize the
per-batch sort and bookkeeping, small enough that a straggler's binary
insert stays a short memmove."""

FALLBACK_MIN_STRAGGLERS = 4096
FALLBACK_RATIO = 4  # fall back when stragglers exceed 1/RATIO of dispatches

_INF = float("inf")
_time0 = itemgetter(0)

Event = Tuple[float, Callable[..., None], tuple]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class SimulationStalled(SimulationError):
    """The event loop is stuck: the dispatch budget ran out with events
    still pending (``reason="budget"``), or the loop dispatched
    ``no_progress_limit`` consecutive events without the virtual clock
    advancing (``reason="no-progress"``).

    Carries the forensic state a failure record needs: the virtual clock,
    the number of events dispatched by the stalled ``run()`` call, and the
    queue depth at the moment of the stall.
    """

    def __init__(
        self, clock: float, events: int, pending: int, reason: str = "budget"
    ) -> None:
        self.clock = clock
        self.events = events
        self.pending = pending
        self.reason = reason
        super().__init__(
            f"simulation stalled ({reason}): clock={clock:.9f}s after "
            f"{events} events with {pending} events still pending"
        )


def resolve_scheduler(name: Optional[str] = None) -> str:
    """Resolve the event-queue name: explicit argument, then the
    ``REPRO_SCHEDULER`` environment variable, then ``"calendar"``.

    An unknown explicit argument raises; an unknown environment value
    warns and falls back to the default (matching how ``REPRO_FULL``
    handles garbage), so a typo in CI cannot silently change semantics
    *and* cannot hard-crash every run.
    """
    if name is not None:
        resolved = name.strip().lower()
        if resolved not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {name!r}: expected one of {SCHEDULER_NAMES}"
            )
        return resolved
    raw = os.environ.get(SCHEDULER_ENV, "").strip().lower()
    if not raw:
        return DEFAULT_SCHEDULER
    if raw not in SCHEDULER_NAMES:
        warnings.warn(
            f"{SCHEDULER_ENV}={raw!r} is not a recognized scheduler "
            f"(expected one of {SCHEDULER_NAMES}); using {DEFAULT_SCHEDULER!r}",
            stacklevel=2,
        )
        return DEFAULT_SCHEDULER
    return raw


def make_event_queue(name: Optional[str] = None):
    """Build the event queue selected by ``name`` (see
    :func:`resolve_scheduler` for the resolution order)."""
    resolved = resolve_scheduler(name)
    if resolved == "heap":
        return HeapEventQueue()
    return CalendarEventQueue()


class HeapEventQueue:
    """Binary-heap event queue: the seed engine's data structure.

    ``events_processed`` is incremented per dispatch (not batched at
    return) so monitors and profilers can read a live value mid-run; the
    dispatch budget folds into the loop condition either way.
    """

    kind = "heap"

    __slots__ = ("now", "events_processed", "_heap", "_sequence")

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence: int = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        self._sequence += 1
        heappush(self._heap, (self.now + delay, self._sequence, callback, args))

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}"
            )
        self._sequence += 1
        heappush(self._heap, (when, self._sequence, callback, args))

    def peek_when(self) -> Optional[float]:
        """Timestamp of the next event, or None when empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def pop_due(self, until: float) -> Optional[Event]:
        """Pop the next event if its time is <= ``until``; advances the
        clock and the dispatch counter.  Single-event API used by the
        engine's instrumented loop."""
        heap = self._heap
        if not heap or heap[0][0] > until:
            return None
        when, _seq, callback, args = heappop(heap)
        self.now = when
        self.events_processed += 1
        return (when, callback, args)

    def drain(self, until: Optional[float], limit: Optional[int]) -> None:
        """Dispatch events in order until the queue empties, the next
        event lies beyond ``until``, or ``events_processed`` reaches
        ``limit`` (an absolute count, not a delta)."""
        heap = self._heap
        pop = heappop  # local binding: dominant call in the hot loop
        if until is None:
            if limit is None:
                while heap:
                    when, _, callback, args = pop(heap)
                    self.now = when
                    callback(*args)
                    self.events_processed += 1
            else:
                while heap and self.events_processed < limit:
                    when, _, callback, args = pop(heap)
                    self.now = when
                    callback(*args)
                    self.events_processed += 1
        else:
            while heap:
                if heap[0][0] > until:
                    break
                if limit is not None and self.events_processed >= limit:
                    break
                when, _, callback, args = pop(heap)
                self.now = when
                callback(*args)
                self.events_processed += 1


class CalendarEventQueue:
    """Lazy sorted-batch event queue with a heap fallback.

    Structure (all times in one of three tiers):

    * ``_far``: unsorted arrivals with ``when >= _horizon``.  Insert is a
      cached ``list.append`` (``_push``).
    * ``_res``: sorted ascending reservoir -- the spill when a sort
      produced more than :data:`BATCH_EVENTS` events.
    * ``_batch`` + ``_cursor``: the active dispatch window, sorted
      ascending; ``_horizon`` is ``_batch[-1][0]`` (or ``-inf`` before
      the first batch), and every event in ``_far``/``_res`` has
      ``when >= _horizon``.

    Stragglers (``when < _horizon``) binary-insert into the live batch at
    or after the cursor -- see the module docstring for why that position
    is always ahead of the dispatch iterator.  The exhausted batch list is
    recycled as the next ``_far`` buffer to avoid a list allocation per
    batch.

    After the heap fallback triggers (``_heap is not None``) the horizon
    is pinned to ``+inf`` so every insert routes through the slow branch
    of ``schedule``/``schedule_at`` into the heap; the calendar tiers stay
    empty.  (Corner case: an event scheduled at exactly ``+inf`` compares
    ``>= _horizon`` and lands in ``_far`` even in heap mode, i.e. it is
    never dispatched -- an infinitely-far event is unreachable in either
    mode, so nothing is lost.)
    """

    kind = "calendar"

    __slots__ = (
        "now",
        "events_processed",
        "_far",
        "_res",
        "_batch",
        "_cursor",
        "_horizon",
        "_stragglers",
        "_push",
        "_heap",
        "_sequence",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._far: List[Event] = []
        self._res: List[Event] = []
        self._batch: List[Event] = []
        self._cursor: int = 0
        self._horizon: float = -_INF
        self._stragglers: int = 0
        self._push = self._far.append
        self._heap: Optional[List[Tuple[float, int, Callable[..., None], tuple]]] = None
        self._sequence: int = 0

    def __len__(self) -> int:
        if self._heap is not None:
            return len(self._heap)
        return len(self._far) + len(self._res) + len(self._batch) - self._cursor

    # ------------------------------------------------------------- insertion

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        when = self.now + delay
        if when >= self._horizon:
            self._push((when, callback, args))
            return
        # Straggler: the event falls inside the active batch window.
        # (Inlined rather than a helper: real workloads form small batches,
        # so this branch and the batch formation below are warm enough that
        # an extra method call per hit shows up in profiles.)
        heap = self._heap
        if heap is not None:
            self._sequence = seq = self._sequence + 1
            heappush(heap, (when, seq, callback, args))
            return
        self._stragglers += 1
        batch = self._batch
        lo = self._cursor
        hi = len(batch)
        while lo < hi:
            mid = (lo + hi) >> 1
            if batch[mid][0] <= when:  # implicit seq is largest: after ties
                lo = mid + 1
            else:
                hi = mid
        batch.insert(lo, (when, callback, args))

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self.now}"
            )
        if when >= self._horizon:
            self._push((when, callback, args))
            return
        heap = self._heap
        if heap is not None:
            self._sequence = seq = self._sequence + 1
            heappush(heap, (when, seq, callback, args))
            return
        self._stragglers += 1
        batch = self._batch
        lo = self._cursor
        hi = len(batch)
        while lo < hi:
            mid = (lo + hi) >> 1
            if batch[mid][0] <= when:
                lo = mid + 1
            else:
                hi = mid
        batch.insert(lo, (when, callback, args))

    # -------------------------------------------------------------- dispatch

    def _form_batch(self) -> bool:
        """Replace the exhausted batch with the next one.  Returns False
        when no events remain.  May instead trigger the heap fallback, in
        which case it returns True with ``_heap`` set -- callers recheck.

        Requires ``_cursor``/``_batch``/``events_processed`` to be
        current (drain syncs them before calling).
        """
        far = self._far
        res = self._res
        batch = self._batch
        if res:
            if far:
                res.extend(far)
                del far[:]
                res.sort(key=_time0)
            next_batch = res[:BATCH_EVENTS]
            del res[:BATCH_EVENTS]
            del batch[:]
        elif far:
            stragglers = self._stragglers
            if (
                stragglers > FALLBACK_MIN_STRAGGLERS
                and stragglers * FALLBACK_RATIO > self.events_processed
            ):
                self._convert_to_heap()
                return True
            far.sort(key=_time0)
            if len(far) <= BATCH_EVENTS:
                next_batch = far
                del batch[:]  # recycle the spent list as the new far tier
                self._far = far = batch
                self._push = far.append
            else:
                next_batch = far[:BATCH_EVENTS]
                self._res = far[BATCH_EVENTS:]
                del far[:]
                del batch[:]
        else:
            return False
        self._batch = next_batch
        self._cursor = 0
        self._horizon = next_batch[-1][0]
        return True

    def _convert_to_heap(self) -> None:
        """Irreversible fallback for pathological straggler ratios: move
        every pending event into a ``(when, seq, callback, args)`` heap,
        preserving the (time, insertion) order as ascending sequence
        numbers, and pin the horizon so new inserts route to the heap."""
        pending = self._batch[self._cursor:]
        rest = self._res + self._far
        rest.sort(key=_time0)  # stable: reservoir (older) precedes far on ties
        pending.extend(rest)
        # A time-sorted list with ascending tie-break is already a valid heap.
        self._heap = [
            (when, seq, callback, args)
            for seq, (when, callback, args) in enumerate(pending)
        ]
        self._sequence = len(pending)
        self._batch = []
        self._res = []
        self._far = []
        self._push = self._far.append
        self._cursor = 0
        self._horizon = _INF

    def peek_when(self) -> Optional[float]:
        """Timestamp of the next event, or None when empty.  O(|far|) in
        the worst case; used only on cold paths (stall forensics)."""
        if self._heap is not None:
            heap = self._heap
            return heap[0][0] if heap else None
        if self._cursor < len(self._batch):
            return self._batch[self._cursor][0]
        candidates = []
        if self._res:
            candidates.append(self._res[0][0])
        if self._far:
            candidates.append(min(ev[0] for ev in self._far))
        return min(candidates) if candidates else None

    def pop_due(self, until: float) -> Optional[Event]:
        """Pop the next event if its time is <= ``until``; advances the
        clock and the dispatch counter (live, per event -- the
        instrumented engine loop pays for what it observes)."""
        if self._heap is None:
            batch = self._batch
            cursor = self._cursor
            if cursor >= len(batch):
                if not self._form_batch():
                    return None
                if self._heap is None:
                    batch = self._batch
                    cursor = 0
            if self._heap is None:
                ev = batch[cursor]
                if ev[0] > until:
                    return None
                self._cursor = cursor + 1
                self.now = ev[0]
                self.events_processed += 1
                return ev
        heap = self._heap
        if not heap or heap[0][0] > until:
            return None
        when, _seq, callback, args = heappop(heap)
        self.now = when
        self.events_processed += 1
        return (when, callback, args)

    def drain(self, until: Optional[float], limit: Optional[int]) -> None:
        """Dispatch events in order until the queue empties, the next
        event lies beyond ``until``, or ``events_processed`` reaches
        ``limit`` (an absolute count).

        The hot path: each batch is dispatched by a bare ``for`` loop over
        an ``islice`` bound, so the per-event cost is one tuple index, one
        attribute store (the clock) and the callback itself -- no counter
        arithmetic, no comparisons.  ``events_processed`` is synced at
        batch boundaries and on exit.
        """
        if self._heap is not None:
            self._drain_heap(until, limit)
            return
        n = self.events_processed
        batch = self._batch
        cursor = self._cursor
        far = self._far
        try:
            while True:
                blen = len(batch)
                if cursor >= blen:
                    # ---- batch formation, inlined (= _form_batch; small
                    # batches make this warm, see the schedule comment) ----
                    self.events_processed = n
                    res = self._res
                    if res:
                        if far:
                            res.extend(far)
                            del far[:]
                            res.sort(key=_time0)
                        next_batch = res[:BATCH_EVENTS]
                        del res[:BATCH_EVENTS]
                        del batch[:]
                    elif far:
                        stragglers = self._stragglers
                        if (
                            stragglers > FALLBACK_MIN_STRAGGLERS
                            and stragglers * FALLBACK_RATIO > n
                        ):
                            self._cursor = cursor
                            self._convert_to_heap()
                            self._drain_heap(until, limit)
                            return
                        far.sort(key=_time0)
                        if len(far) <= BATCH_EVENTS:
                            next_batch = far
                            del batch[:]  # recycle the spent list as far
                            self._far = far = batch
                            self._push = far.append
                        else:
                            next_batch = far[:BATCH_EVENTS]
                            self._res = far[BATCH_EVENTS:]
                            del far[:]
                            del batch[:]
                    else:
                        break
                    self._batch = batch = next_batch
                    self._cursor = cursor = 0
                    self._horizon = batch[-1][0]
                    blen = len(batch)
                room = blen - cursor
                if limit is not None:
                    budget = limit - n
                    if budget < room:
                        room = budget
                if until is not None:
                    # First index past the horizon, by binary search: the
                    # batch is time-sorted.
                    lo = cursor
                    hi = blen
                    while lo < hi:
                        mid = (lo + hi) >> 1
                        if batch[mid][0] <= until:
                            lo = mid + 1
                        else:
                            hi = mid
                    if lo - cursor < room:
                        room = lo - cursor
                if room <= 0:
                    break  # budget or horizon exhausted (batch is not)
                end = cursor + room
                for when, callback, cb_args in islice(batch, cursor, end):
                    self.now = when
                    callback(*cb_args)
                # Stragglers may have grown the batch mid-loop (always
                # ahead of the iterator), so recount what was consumed.
                blen = len(batch)
                dispatched = (end if end < blen else blen) - cursor
                cursor += dispatched
                n += dispatched
        except BaseException:
            # A callback raised mid-batch: the exact dispatch position is
            # unknowable (islice does not expose it).  Resync to the first
            # event at the current timestamp -- nothing earlier than `now`
            # can replay, events at exactly `now` might.  Documented
            # limitation; discard the simulator after an exception.
            batch = self._batch
            target = self.now
            lo, hi = 0, len(batch)
            while lo < hi:
                mid = (lo + hi) >> 1
                if batch[mid][0] < target:
                    lo = mid + 1
                else:
                    hi = mid
            self._cursor = lo
            self.events_processed = n
            raise
        self._cursor = cursor
        self.events_processed = n

    def _drain_heap(self, until: Optional[float], limit: Optional[int]) -> None:
        """Post-fallback drain: the heap loop, with the live counter."""
        heap = self._heap
        assert heap is not None
        pop = heappop
        while heap:
            if until is not None and heap[0][0] > until:
                break
            if limit is not None and self.events_processed >= limit:
                break
            when, _, callback, args = pop(heap)
            self.now = when
            callback(*args)
            self.events_processed += 1
