"""Unit constants and converters used throughout the simulator.

The simulator's canonical units are:

* time      -- seconds (float)
* data size -- bytes (int)
* data rate -- bits per second (float)

All other representations (microseconds, kilobytes, gigabits per second)
are converted at the edges through the helpers in this module so that unit
mistakes are confined to call sites rather than scattered through the
simulation core.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time.
# ---------------------------------------------------------------------------

SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECOND


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANOSECOND


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / MICROSECOND


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLISECOND


# ---------------------------------------------------------------------------
# Data sizes.  ``KB``/``MB`` follow the networking convention used by the
# paper: 1 KB = 1000 bytes would be unusual for buffer sizes, and the paper's
# thresholds (e.g. 250KB ~ 166 full-size packets) are consistent with
# 1 KB = 1024 bytes, matching Linux qdisc and switch documentation.
# ---------------------------------------------------------------------------

BYTE = 1
KB = 1024
MB = 1024 * KB


def kb(value: float) -> int:
    """Convert kilobytes to bytes."""
    return int(value * KB)


def mb(value: float) -> int:
    """Convert megabytes to bytes."""
    return int(value * MB)


# ---------------------------------------------------------------------------
# Data rates (bits per second).
# ---------------------------------------------------------------------------

BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return value * GBPS


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * MBPS


def transmission_delay(size_bytes: int, rate_bps: float) -> float:
    """Time in seconds to serialize ``size_bytes`` onto a ``rate_bps`` link."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return size_bytes * 8.0 / rate_bps


def bandwidth_delay_product(rate_bps: float, rtt_seconds: float) -> int:
    """The classic C x RTT product, in bytes (rounded down)."""
    if rate_bps < 0 or rtt_seconds < 0:
        raise ValueError("rate and RTT must be non-negative")
    return int(rate_bps * rtt_seconds / 8.0)


# Standard Ethernet framing used by default everywhere in the reproduction.
MTU = 1500
"""Maximum transmission unit in bytes (IP + TCP + payload)."""

HEADER_SIZE = 40
"""Combined IP + TCP header size in bytes (no options)."""

MSS = MTU - HEADER_SIZE
"""Maximum segment size: payload bytes per full-sized packet."""

ACK_SIZE = HEADER_SIZE
"""A pure ACK carries headers only."""
