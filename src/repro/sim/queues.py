"""Packet queues with byte and packet accounting.

A :class:`PacketQueue` is a FIFO with O(1) byte/packet counters.  Egress
ports own one or more of these (one per service class when a multi-queue
scheduler is configured) and share a drop-tail buffer budget across them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .packet import Packet

__all__ = ["PacketQueue", "BufferPool"]


class PacketQueue:
    """A FIFO of packets with constant-time byte/packet length queries.

    The deque's ``append``/``popleft`` are bound once at construction --
    ``push``/``pop`` sit on the per-packet path of every event-driven port,
    and the cached bindings skip an attribute lookup per call.
    """

    __slots__ = ("_packets", "_bytes", "service", "_append", "_popleft")

    def __init__(self, service: int = 0) -> None:
        self._packets: Deque[Packet] = deque()
        self._bytes = 0
        self.service = service
        self._append = self._packets.append
        self._popleft = self._packets.popleft

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def byte_length(self) -> int:
        """Total bytes queued."""
        return self._bytes

    @property
    def packet_length(self) -> int:
        """Total packets queued."""
        return len(self._packets)

    def is_empty(self) -> bool:
        return not self._packets

    def push(self, packet: Packet) -> None:
        """Append a packet to the tail."""
        self._append(packet)
        self._bytes += packet.size

    def pop(self) -> Packet:
        """Remove and return the head packet."""
        if not self._packets:
            raise IndexError("pop from empty PacketQueue")
        packet = self._popleft()
        self._bytes -= packet.size
        return packet

    def peek(self) -> Optional[Packet]:
        """Return the head packet without removing it, or None if empty."""
        return self._packets[0] if self._packets else None


class BufferPool:
    """Drop-tail byte budget shared by the queues of one egress port.

    Mirrors a switch port's slice of shared packet buffer: an arriving packet
    that would push the occupancy past ``capacity_bytes`` is dropped at
    enqueue.  Accounting is in bytes because the paper's thresholds are
    byte/time based and packets are variable-sized.
    """

    __slots__ = ("capacity_bytes", "_used", "_peak")

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._used = 0
        self._peak = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark of occupancy (telemetry: burst absorption)."""
        return self._peak

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def try_reserve(self, size: int) -> bool:
        """Reserve ``size`` bytes; False (and no reservation) if full."""
        used = self._used + size
        if used > self.capacity_bytes:
            return False
        self._used = used
        if used > self._peak:
            self._peak = used
        return True

    def release(self, size: int) -> None:
        """Return ``size`` bytes to the pool."""
        self._used -= size
        if self._used < 0:
            raise RuntimeError("buffer accounting underflow")
