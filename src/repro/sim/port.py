"""Egress ports: serialization, buffering, AQM hook points.

A :class:`Port` models one direction of a link attached to a node: it owns a
packet scheduler (one or more queues), a drop-tail buffer budget, an AQM, a
serialization rate and the propagation delay to the peer node.

The transmit loop is event-driven: a port is either idle or has exactly one
in-flight serialization event.  ``send`` enqueues (running the AQM's enqueue
hook and buffer admission) and kicks the loop if idle; each serialization
completion hands the packet to the peer after the propagation delay and pulls
the next packet (running the AQM's dequeue hook, where sojourn-time markers
act).

Ports with nothing to observe -- a ``NullAqm``, the plain FIFO scheduler and
no telemetry attached (i.e. host NIC ports in every experiment) -- can take a
closed-form fast path instead: because FIFO service at a fixed rate is just a
running ``free_at`` clock, the delivery time of each packet is computable at
admission (``start = max(free_at, now)``, ``done = start + serialization``),
so one event delivers the packet and the serialization-completion event
disappears.  Buffer admission stays exact via a lazy in-flight ledger that
releases each packet's reservation once its service has started, which is the
same instant the event-driven loop releases it.

The fast path is **opt-in** (``REPRO_PORT_FAST=1``), off by default: every
delivery lands at the float-identical instant, but the delivery event is
*inserted* at admission time rather than at serialization-complete time, so
its ``(time, insertion-sequence)`` tie-break against coincident events from
other components differs from the event-driven loop's -- and a DES is
chaotic, so a single reordered tie cascades into bit-level result drift
(observed as a few per-mille difference in AQM mark counts at fig10 scale).
Enable it for throughput studies where bit-reproducibility against the
default event chain does not matter; it is skipped automatically the moment
anything needs per-packet hooks.
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional, Tuple

from ..telemetry.runtime import dataplane_telemetry
from .engine import Simulator
from .packet import Packet
from .queues import BufferPool
from .scheduler import FifoScheduler, Scheduler
from .units import transmission_delay

if TYPE_CHECKING:  # pragma: no cover
    from ..core.base import Aqm
    from .network import Node

__all__ = ["Port", "PortStats", "PORT_FAST_ENV"]

PORT_FAST_ENV = "REPRO_PORT_FAST"
"""Set to ``1``/``true``/``on`` to let hook-free FIFO ports use the
closed-form fast path.  Off by default: delivery *times* are float-identical
but event insertion order is not, which perturbs same-timestamp tie-breaks
and therefore bit-level reproducibility (see the module docstring)."""


def _fast_path_enabled() -> bool:
    return os.environ.get(PORT_FAST_ENV, "0").strip().lower() in (
        "1",
        "true",
        "on",
    )


class PortStats:
    """Per-port counters used by experiments and tests."""

    __slots__ = (
        "enqueued_packets",
        "tx_packets",
        "tx_bytes",
        "dropped_overflow",
        "dropped_aqm",
    )

    def __init__(self) -> None:
        self.enqueued_packets = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_overflow = 0
        self.dropped_aqm = 0

    @property
    def dropped_total(self) -> int:
        return self.dropped_overflow + self.dropped_aqm


class Port:
    """One egress direction of a link."""

    __slots__ = (
        "sim",
        "name",
        "rate_bps",
        "propagation_delay",
        "scheduler",
        "buffer",
        "aqm",
        "peer",
        "stats",
        "_busy",
        "on_drop",
        "telemetry",
        "_fast",
        "_free_at",
        "_inflight",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        propagation_delay: float,
        buffer_bytes: int,
        aqm: Optional["Aqm"] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("port rate must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        # Imported here (not at module scope) to keep repro.sim importable
        # from repro.core.base, which only needs sim.packet.
        from ..core.base import NullAqm

        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()
        self.buffer = BufferPool(buffer_bytes)
        self.aqm = aqm if aqm is not None else NullAqm()
        self.peer: Optional["Node"] = None
        self.stats = PortStats()
        self._busy = False
        self.on_drop: Optional[Callable[[Packet, str], None]] = None
        # Attached once here; every hot-path hook below is a single
        # ``is not None`` check when telemetry is inactive.
        self.telemetry = dataplane_telemetry()
        if self.telemetry is not None:
            self.telemetry.register_port(self)
        # Fast-path state: eligibility is resolved lazily on the first send
        # (after experiment wiring has installed AQMs/telemetry), and the
        # in-flight ledger holds (service_start, service_done, size) triples
        # whose buffer reservations are released once service has started.
        self._fast: Optional[bool] = None
        self._free_at = 0.0
        self._inflight: Deque[Tuple[float, float, int]] = deque()

    # ------------------------------------------------------------- queueing

    @property
    def queue_bytes(self) -> int:
        """Instantaneous queue occupancy in bytes (all service queues)."""
        if self._fast:
            now = self.sim.now
            return sum(entry[2] for entry in self._inflight if entry[0] > now)
        return self.scheduler.total_bytes

    @property
    def queue_packets(self) -> int:
        """Instantaneous queue occupancy in packets (all service queues)."""
        if self._fast:
            now = self.sim.now
            return sum(1 for entry in self._inflight if entry[0] > now)
        return self.scheduler.total_packets

    def _resolve_fast(self) -> bool:
        """Decide once, at first send, whether this port can skip the
        event-driven loop: nothing may need per-packet hooks."""
        from ..core.base import NullAqm

        fast = (
            _fast_path_enabled()
            and type(self.aqm) is NullAqm
            and type(self.scheduler) is FifoScheduler
            and self.telemetry is None
        )
        self._fast = fast
        return fast

    def send(self, packet: Packet) -> None:
        """Admit a packet to the port: buffer check, AQM enqueue hook,
        enqueue, and start transmitting if the line is idle."""
        fast = self._fast
        if fast or (fast is None and self._resolve_fast()):
            self._send_fast(packet)
            return
        if self.peer is None:
            raise RuntimeError(f"port {self.name} is not connected")
        now = self.sim.now
        telemetry = self.telemetry
        queue_bytes = self.scheduler.total_bytes
        if not self.buffer.try_reserve(packet.size):
            self.stats.dropped_overflow += 1
            if self.on_drop is not None:
                self.on_drop(packet, "overflow")
            if telemetry is not None:
                telemetry.on_drop(self, packet, "overflow", now)
            return
        if not self.aqm.on_enqueue(packet, now, queue_bytes):
            self.buffer.release(packet.size)
            self.stats.dropped_aqm += 1
            if self.on_drop is not None:
                self.on_drop(packet, "aqm")
            if telemetry is not None:
                telemetry.on_drop(self, packet, "aqm", now)
            return
        packet.enqueue_time = now
        self.scheduler.enqueue(packet)
        self.stats.enqueued_packets += 1
        if telemetry is not None:
            telemetry.on_enqueue(self, packet, now)
        if not self._busy:
            self._transmit_next()

    def _send_fast(self, packet: Packet) -> None:
        """Closed-form admission + delivery for hook-free FIFO ports.

        Event-for-event equivalent of ``send`` + the transmit loop, minus
        the serialization-completion event: the arithmetic is the *same
        float operations* the event-driven loop performs (``start`` equals
        the time the loop would have dequeued this packet; the delivery is
        scheduled at ``done + propagation_delay`` exactly as
        ``_transmission_complete`` would), so packet timings are
        bit-identical.  What is *not* identical is the insertion moment of
        the delivery event (admission vs serialization-complete), hence the
        opt-in status -- see the module docstring.
        """
        if self.peer is None:
            raise RuntimeError(f"port {self.name} is not connected")
        sim = self.sim
        now = sim.now
        buffer = self.buffer
        inflight = self._inflight
        # Release reservations of packets whose service has started -- the
        # instant the event loop's dequeue would have released them.
        while inflight and inflight[0][0] <= now:
            buffer.release(inflight.popleft()[2])
        size = packet.size
        if not buffer.try_reserve(size):
            self.stats.dropped_overflow += 1
            if self.on_drop is not None:
                self.on_drop(packet, "overflow")
            return
        self.aqm.stats.packets_seen += 1  # NullAqm.on_enqueue, inlined
        packet.enqueue_time = now
        self.stats.enqueued_packets += 1
        free_at = self._free_at
        start = free_at if free_at > now else now
        done = start + transmission_delay(size, self.rate_bps)
        self._free_at = done
        inflight.append((start, done, size))
        sim.schedule_at(done + self.propagation_delay, self._deliver_fast, packet)

    def _deliver_fast(self, packet: Packet) -> None:
        """Delivery event of the fast path: settle the ledger (this packet's
        own service has started by now, so the buffer drains to zero once the
        port goes idle), count the transmission, and hand over to the peer."""
        now = self.sim.now
        buffer = self.buffer
        inflight = self._inflight
        while inflight and inflight[0][0] <= now:
            buffer.release(inflight.popleft()[2])
        stats = self.stats
        stats.tx_packets += 1
        stats.tx_bytes += packet.size
        self.peer.receive(packet)  # type: ignore[union-attr]

    # --------------------------------------------------------- transmit loop

    def _transmit_next(self) -> None:
        now = self.sim.now
        telemetry = self.telemetry
        while True:
            packet = self.scheduler.dequeue()
            if packet is None:
                self._busy = False
                return
            self.buffer.release(packet.size)
            if not self.aqm.on_dequeue(packet, now):
                # AQM chose to drop at dequeue (not-ECT under marking).
                self.stats.dropped_aqm += 1
                if self.on_drop is not None:
                    self.on_drop(packet, "aqm")
                if telemetry is not None:
                    telemetry.on_drop(self, packet, "aqm", now)
                continue
            if telemetry is not None:
                telemetry.on_dequeue(self, packet, now)
            self._busy = True
            delay = transmission_delay(packet.size, self.rate_bps)
            self.sim.schedule(delay, self._transmission_complete, packet)
            return

    def _transmission_complete(self, packet: Packet) -> None:
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size
        peer = self.peer
        assert peer is not None
        self.sim.schedule(self.propagation_delay, peer.receive, packet)
        self._transmit_next()
