"""Egress ports: serialization, buffering, AQM hook points.

A :class:`Port` models one direction of a link attached to a node: it owns a
packet scheduler (one or more queues), a drop-tail buffer budget, an AQM, a
serialization rate and the propagation delay to the peer node.

The transmit loop is event-driven: a port is either idle or has exactly one
in-flight serialization event.  ``send`` enqueues (running the AQM's enqueue
hook and buffer admission) and kicks the loop if idle; each serialization
completion hands the packet to the peer after the propagation delay and pulls
the next packet (running the AQM's dequeue hook, where sojourn-time markers
act).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..telemetry.runtime import dataplane_telemetry
from .engine import Simulator
from .packet import Packet
from .queues import BufferPool
from .scheduler import FifoScheduler, Scheduler
from .units import transmission_delay

if TYPE_CHECKING:  # pragma: no cover
    from ..core.base import Aqm
    from .network import Node

__all__ = ["Port", "PortStats"]


class PortStats:
    """Per-port counters used by experiments and tests."""

    __slots__ = (
        "enqueued_packets",
        "tx_packets",
        "tx_bytes",
        "dropped_overflow",
        "dropped_aqm",
    )

    def __init__(self) -> None:
        self.enqueued_packets = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_overflow = 0
        self.dropped_aqm = 0

    @property
    def dropped_total(self) -> int:
        return self.dropped_overflow + self.dropped_aqm


class Port:
    """One egress direction of a link."""

    __slots__ = (
        "sim",
        "name",
        "rate_bps",
        "propagation_delay",
        "scheduler",
        "buffer",
        "aqm",
        "peer",
        "stats",
        "_busy",
        "on_drop",
        "telemetry",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        propagation_delay: float,
        buffer_bytes: int,
        aqm: Optional["Aqm"] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("port rate must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        # Imported here (not at module scope) to keep repro.sim importable
        # from repro.core.base, which only needs sim.packet.
        from ..core.base import NullAqm

        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()
        self.buffer = BufferPool(buffer_bytes)
        self.aqm = aqm if aqm is not None else NullAqm()
        self.peer: Optional["Node"] = None
        self.stats = PortStats()
        self._busy = False
        self.on_drop: Optional[Callable[[Packet, str], None]] = None
        # Attached once here; every hot-path hook below is a single
        # ``is not None`` check when telemetry is inactive.
        self.telemetry = dataplane_telemetry()
        if self.telemetry is not None:
            self.telemetry.register_port(self)

    # ------------------------------------------------------------- queueing

    @property
    def queue_bytes(self) -> int:
        """Instantaneous queue occupancy in bytes (all service queues)."""
        return self.scheduler.total_bytes

    @property
    def queue_packets(self) -> int:
        """Instantaneous queue occupancy in packets (all service queues)."""
        return self.scheduler.total_packets

    def send(self, packet: Packet) -> None:
        """Admit a packet to the port: buffer check, AQM enqueue hook,
        enqueue, and start transmitting if the line is idle."""
        if self.peer is None:
            raise RuntimeError(f"port {self.name} is not connected")
        now = self.sim.now
        queue_bytes = self.scheduler.total_bytes
        if not self.buffer.try_reserve(packet.size):
            self.stats.dropped_overflow += 1
            if self.on_drop is not None:
                self.on_drop(packet, "overflow")
            if self.telemetry is not None:
                self.telemetry.on_drop(self, packet, "overflow", now)
            return
        if not self.aqm.on_enqueue(packet, now, queue_bytes):
            self.buffer.release(packet.size)
            self.stats.dropped_aqm += 1
            if self.on_drop is not None:
                self.on_drop(packet, "aqm")
            if self.telemetry is not None:
                self.telemetry.on_drop(self, packet, "aqm", now)
            return
        packet.enqueue_time = now
        self.scheduler.enqueue(packet)
        self.stats.enqueued_packets += 1
        if self.telemetry is not None:
            self.telemetry.on_enqueue(self, packet, now)
        if not self._busy:
            self._transmit_next()

    # --------------------------------------------------------- transmit loop

    def _transmit_next(self) -> None:
        now = self.sim.now
        while True:
            packet = self.scheduler.dequeue()
            if packet is None:
                self._busy = False
                return
            self.buffer.release(packet.size)
            if not self.aqm.on_dequeue(packet, now):
                # AQM chose to drop at dequeue (not-ECT under marking).
                self.stats.dropped_aqm += 1
                if self.on_drop is not None:
                    self.on_drop(packet, "aqm")
                if self.telemetry is not None:
                    self.telemetry.on_drop(self, packet, "aqm", now)
                continue
            if self.telemetry is not None:
                self.telemetry.on_dequeue(self, packet, now)
            self._busy = True
            delay = transmission_delay(packet.size, self.rate_bps)
            self.sim.schedule(delay, self._transmission_complete, packet)
            return

    def _transmission_complete(self, packet: Packet) -> None:
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size
        peer = self.peer
        assert peer is not None
        self.sim.schedule(self.propagation_delay, peer.receive, packet)
        self._transmit_next()
