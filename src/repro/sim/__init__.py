"""Packet-level discrete-event network simulator (the ns-3/testbed substitute)."""

from . import units
from .engine import SimulationError, SimulationStalled, Simulator, Timer
from .monitor import DropTracer, QueueMonitor, QueueSample
from .network import Host, Network, Node, Switch
from .packet import Ecn, Packet, PacketFactory
from .port import Port, PortStats
from .queues import BufferPool, PacketQueue
from .scheduler import DwrrScheduler, FifoScheduler, Scheduler, StrictPriorityScheduler

__all__ = [
    "units",
    "SimulationError",
    "SimulationStalled",
    "Simulator",
    "Timer",
    "DropTracer",
    "QueueMonitor",
    "QueueSample",
    "Host",
    "Network",
    "Node",
    "Switch",
    "Ecn",
    "Packet",
    "PacketFactory",
    "Port",
    "PortStats",
    "BufferPool",
    "PacketQueue",
    "DwrrScheduler",
    "FifoScheduler",
    "Scheduler",
    "StrictPriorityScheduler",
]
