"""Packets and ECN codepoints.

Packets are deliberately lightweight (``__slots__``, no dictionaries): a
single experiment moves hundreds of thousands of them through the event loop.
A free-list pool (:func:`acquire_packet` / :func:`release_packet`) lets the
transport endpoints recycle them: a packet is acquired where it enters the
network (sender segment construction, sink ACK construction) and released at
its single consumption point (sink for data, sender for ACKs), so the
steady-state allocation rate drops to the pool-miss rate.  Dropped packets
are simply never released -- they fall to the garbage collector, which keeps
the protocol trivially safe: nothing is ever recycled while still reachable
from a queue, an in-flight event, or a telemetry hook.

ECN state follows RFC 3168's IP codepoints plus the two TCP header flags the
transports need (ECE on ACKs).  A packet whose flow negotiated ECN carries
``ECT0``; switch AQMs mark congestion by flipping it to ``CE``.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["Ecn", "Packet", "PacketFactory", "acquire_packet", "release_packet"]


class Ecn:
    """IP ECN codepoints (two-bit field)."""

    NOT_ECT = 0  # transport is not ECN-capable; AQM must drop, not mark
    ECT1 = 1
    ECT0 = 2
    CE = 3

    @staticmethod
    def is_ect(codepoint: int) -> bool:
        """True if the codepoint indicates an ECN-capable transport."""
        return codepoint != Ecn.NOT_ECT


class Packet:
    """A simulated packet (one TCP segment or ACK).

    Attributes:
        flow_id: Identifier of the owning flow; used for routing/hashing.
        src / dst: Host identifiers (node names).
        seq: Segment index for data packets (0-based); for ACKs, the
            cumulative acknowledgement (next expected segment index).
        size: Wire size in bytes, headers included.
        is_ack: Pure ACK flag.
        ecn: IP ECN codepoint (see :class:`Ecn`).
        ece: TCP ECN-Echo flag (meaningful on ACKs).
        service: Service / traffic class, used by multi-queue schedulers.
        enqueue_time: Timestamp stamped by the switch queue at enqueue;
            sojourn time = dequeue time - enqueue_time.
        sent_time: Time the sender transmitted this packet (RTT sampling).
        retransmission: Whether this data packet is a retransmission.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "seq",
        "size",
        "is_ack",
        "ecn",
        "ece",
        "service",
        "enqueue_time",
        "sent_time",
        "retransmission",
    )

    def __init__(
        self,
        flow_id: int,
        src: str,
        dst: str,
        seq: int,
        size: int,
        is_ack: bool = False,
        ecn: int = Ecn.ECT0,
        ece: bool = False,
        service: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.is_ack = is_ack
        self.ecn = ecn
        self.ece = ece
        self.service = service
        self.enqueue_time: float = -1.0
        self.sent_time: float = -1.0
        self.retransmission: bool = False

    @property
    def ce_marked(self) -> bool:
        """Whether a switch has marked this packet Congestion Experienced."""
        return self.ecn == Ecn.CE

    def mark_ce(self) -> None:
        """Set the CE codepoint (only valid for ECN-capable packets)."""
        if not Ecn.is_ect(self.ecn) and self.ecn != Ecn.CE:
            raise ValueError("cannot CE-mark a not-ECT packet")
        self.ecn = Ecn.CE

    def sojourn_time(self, now: float) -> float:
        """Queueing delay experienced at the current switch queue."""
        if self.enqueue_time < 0:
            raise ValueError("packet was never enqueued")
        return now - self.enqueue_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (
            f"<Packet {kind} flow={self.flow_id} seq={self.seq} "
            f"size={self.size} ecn={self.ecn} {self.src}->{self.dst}>"
        )


_pool: List[Packet] = []
_POOL_MAX = 8192  # bounds idle memory; misses just allocate normally


def acquire_packet(
    flow_id: int,
    src: str,
    dst: str,
    seq: int,
    size: int,
    is_ack: bool = False,
    ecn: int = Ecn.ECT0,
    ece: bool = False,
    service: int = 0,
) -> Packet:
    """Return a fully (re)initialised packet, recycled when the pool has one.

    Behaves exactly like the :class:`Packet` constructor (including the
    positive-size validation); every slot is overwritten, so no state leaks
    from the packet's previous life.
    """
    if not _pool:
        return Packet(flow_id, src, dst, seq, size, is_ack, ecn, ece, service)
    if size <= 0:
        raise ValueError(f"packet size must be positive, got {size}")
    packet = _pool.pop()
    packet.flow_id = flow_id
    packet.src = src
    packet.dst = dst
    packet.seq = seq
    packet.size = size
    packet.is_ack = is_ack
    packet.ecn = ecn
    packet.ece = ece
    packet.service = service
    packet.enqueue_time = -1.0
    packet.sent_time = -1.0
    packet.retransmission = False
    return packet


def release_packet(packet: Packet) -> None:
    """Hand a consumed packet back to the pool.

    Only call this at a packet's terminal consumption point -- after the
    caller is done reading it and no queue, event, or observer can still
    reach it.  Releasing is optional: packets that are dropped (or simply
    never released) are collected normally.
    """
    if len(_pool) < _POOL_MAX:
        _pool.append(packet)


class PacketFactory:
    """Allocates flow identifiers unique within one experiment."""

    __slots__ = ("_next_flow_id",)

    def __init__(self) -> None:
        self._next_flow_id = 0

    def next_flow_id(self) -> int:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id
