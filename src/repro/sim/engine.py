"""Discrete-event simulation engine.

A :class:`Simulator` owns a monotonic virtual clock and a priority queue of
pending events.  Events are plain ``(time, sequence, callback, args)`` tuples;
the sequence number breaks ties so that events scheduled earlier run earlier,
which keeps runs fully deterministic.

Cancellable timers (used heavily by TCP retransmission logic) are provided by
:class:`Timer`, which uses lazy cancellation: a cancelled or superseded firing
is detected by a generation counter when the event pops, avoiding any need to
remove entries from the middle of the heap.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from ..telemetry.profiler import HEAP_SAMPLE_MASK, RunProfiler
from ..telemetry.runtime import get_active

__all__ = ["Simulator", "Timer", "SimulationError", "SimulationStalled"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class SimulationStalled(SimulationError):
    """The event loop is stuck: the dispatch budget ran out with events
    still pending (``reason="budget"``), or the loop dispatched
    ``no_progress_limit`` consecutive events without the virtual clock
    advancing (``reason="no-progress"``).

    Carries the forensic state a failure record needs: the virtual clock,
    the number of events dispatched by the stalled ``run()`` call, and the
    heap size at the moment of the stall.
    """

    def __init__(
        self, clock: float, events: int, pending: int, reason: str = "budget"
    ) -> None:
        self.clock = clock
        self.events = events
        self.pending = pending
        self.reason = reason
        super().__init__(
            f"simulation stalled ({reason}): clock={clock:.9f}s after "
            f"{events} events with {pending} events still pending"
        )


class Simulator:
    """Event loop with a virtual clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.001, callback, arg1, arg2)
        sim.run(until=1.0)
    """

    __slots__ = (
        "_now",
        "_heap",
        "_sequence",
        "_events_processed",
        "_running",
        "_profiler",
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        telemetry = get_active()
        self._profiler: Optional[RunProfiler] = (
            telemetry.profiler if telemetry is not None else None
        )

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far.  Updated per dispatch, so
        monitors and profilers can read a live value mid-run."""
        return self._events_processed

    @property
    def profiler(self) -> Optional[RunProfiler]:
        """Profiler collecting run statistics, if one is attached."""
        return self._profiler

    @profiler.setter
    def profiler(self, profiler: Optional[RunProfiler]) -> None:
        self._profiler = profiler

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self._now}"
            )
        self._sequence += 1
        heappush(self._heap, (when, self._sequence, callback, args))

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        raise_on_stall: bool = False,
        no_progress_limit: Optional[int] = None,
    ) -> None:
        """Dispatch events in time order.

        Stops when the event queue drains, when the next event lies beyond
        ``until``, or after ``max_events`` dispatches.  On an ``until`` stop
        the clock is advanced to ``until`` so that subsequent scheduling is
        relative to the requested horizon.

        ``raise_on_stall=True`` turns a ``max_events`` exhaustion with
        events still runnable into a :class:`SimulationStalled` instead of
        a silent truncation (callers using ``max_events`` as a cooperative
        budget keep the default).  ``no_progress_limit`` additionally
        raises when that many consecutive events dispatch without the
        virtual clock advancing -- the signature of an event loop
        rescheduling itself at the same instant forever.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            pop = heappop  # local binding: dominant call in the hot loop
            # ``_events_processed`` is incremented per dispatch (not batched
            # at return) so monitors and the profiler can read a live value
            # mid-run; the dispatch budget is tracked through it too, which
            # keeps the loop at the same per-event op count either way.
            start_events = self._events_processed
            limit = None if max_events is None else start_events + max_events
            profiler = self._profiler
            if profiler is None and no_progress_limit is None:
                if until is None:
                    # The dominant path (run_until_idle): no horizon check,
                    # and the budget folds into the loop condition.
                    if limit is None:
                        while heap:
                            when, _, callback, args = pop(heap)
                            self._now = when
                            callback(*args)
                            self._events_processed += 1
                    else:
                        while heap and self._events_processed < limit:
                            when, _, callback, args = pop(heap)
                            self._now = when
                            callback(*args)
                            self._events_processed += 1
                else:
                    while heap:
                        when = heap[0][0]
                        if when > until:
                            break
                        if limit is not None and self._events_processed >= limit:
                            break
                        when, _, callback, args = pop(heap)
                        self._now = when
                        callback(*args)
                        self._events_processed += 1
            else:
                # Instrumented loop: profiler and/or no-progress detection.
                wall_start = perf_counter()
                virtual_start = self._now
                peak_heap = len(heap)
                last_clock = self._now
                same_clock = 0
                no_progress_stall = False
                while heap:
                    when = heap[0][0]
                    if until is not None and when > until:
                        break
                    if limit is not None and self._events_processed >= limit:
                        break
                    when, _, callback, args = pop(heap)
                    self._now = when
                    callback(*args)
                    self._events_processed += 1
                    if no_progress_limit is not None:
                        if when > last_clock:
                            last_clock = when
                            same_clock = 0
                        else:
                            same_clock += 1
                            if same_clock >= no_progress_limit:
                                no_progress_stall = True
                                break
                    if (
                        profiler is not None
                        and self._events_processed & HEAP_SAMPLE_MASK == 0
                        and len(heap) > peak_heap
                    ):
                        peak_heap = len(heap)
                if profiler is not None:
                    profiler.record_run(
                        events=self._events_processed - start_events,
                        wall_seconds=perf_counter() - wall_start,
                        virtual_seconds=self._now - virtual_start,
                        peak_heap_depth=peak_heap,
                    )
                if no_progress_stall:
                    raise SimulationStalled(
                        clock=self._now,
                        events=self._events_processed - start_events,
                        pending=len(heap),
                        reason="no-progress",
                    )
            if (
                raise_on_stall
                and limit is not None
                and self._events_processed >= limit
                and heap
                and (until is None or heap[0][0] <= until)
            ):
                raise SimulationStalled(
                    clock=self._now,
                    events=self._events_processed - start_events,
                    pending=len(heap),
                    reason="budget",
                )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(
        self,
        max_events: int = 100_000_000,
        raise_on_stall: bool = True,
        no_progress_limit: Optional[int] = None,
    ) -> None:
        """Run until no events remain (bounded by ``max_events``).

        Exhausting ``max_events`` with events still queued means the run
        did not reach idle -- by default that raises
        :class:`SimulationStalled` (with the clock, dispatch count and
        heap size) instead of returning a silently truncated simulation.
        """
        self.run(
            until=None,
            max_events=max_events,
            raise_on_stall=raise_on_stall,
            no_progress_limit=no_progress_limit,
        )


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    ``restart`` supersedes any previously scheduled firing; ``cancel``
    suppresses the pending firing.  Both are O(1): stale heap entries are
    discarded when they pop by comparing generation counters.
    """

    __slots__ = ("_sim", "_callback", "_generation", "_armed", "expiry")

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._generation = 0
        self._armed = False
        self.expiry: float = float("inf")

    @property
    def armed(self) -> bool:
        """Whether a firing is currently pending."""
        return self._armed

    def restart(self, delay: float) -> None:
        """(Re)schedule the timer ``delay`` seconds from now."""
        self._generation += 1
        self._armed = True
        self.expiry = self._sim.now + delay
        self._sim.schedule(delay, self._fire, self._generation)

    def cancel(self) -> None:
        """Suppress any pending firing."""
        self._generation += 1
        self._armed = False
        self.expiry = float("inf")

    def _fire(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by restart() or cancel()
        self._armed = False
        self.expiry = float("inf")
        self._callback()
