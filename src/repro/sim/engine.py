"""Discrete-event simulation engine.

A :class:`Simulator` owns a monotonic virtual clock and a priority queue of
pending events.  Events are plain ``(time, sequence, callback, args)`` tuples;
the sequence number breaks ties so that events scheduled earlier run earlier,
which keeps runs fully deterministic.

Cancellable timers (used heavily by TCP retransmission logic) are provided by
:class:`Timer`, which uses lazy cancellation: a cancelled or superseded firing
is detected by a generation counter when the event pops, avoiding any need to
remove entries from the middle of the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "Timer", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Simulator:
    """Event loop with a virtual clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.001, callback, arg1, arg2)
        sim.run(until=1.0)
    """

    __slots__ = ("_now", "_heap", "_sequence", "_events_processed", "_running")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence: int = 0
        self._events_processed: int = 0
        self._running: bool = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (for instrumentation)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self._now}"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, callback, args))

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Dispatch events in time order.

        Stops when the event queue drains, when the next event lies beyond
        ``until``, or after ``max_events`` dispatches.  On an ``until`` stop
        the clock is advanced to ``until`` so that subsequent scheduling is
        relative to the requested horizon.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            dispatched = 0
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                when, _, callback, args = heapq.heappop(heap)
                self._now = when
                callback(*args)
                dispatched += 1
            self._events_processed += dispatched
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 100_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(until=None, max_events=max_events)


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    ``restart`` supersedes any previously scheduled firing; ``cancel``
    suppresses the pending firing.  Both are O(1): stale heap entries are
    discarded when they pop by comparing generation counters.
    """

    __slots__ = ("_sim", "_callback", "_generation", "_armed", "expiry")

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._generation = 0
        self._armed = False
        self.expiry: float = float("inf")

    @property
    def armed(self) -> bool:
        """Whether a firing is currently pending."""
        return self._armed

    def restart(self, delay: float) -> None:
        """(Re)schedule the timer ``delay`` seconds from now."""
        self._generation += 1
        self._armed = True
        self.expiry = self._sim.now + delay
        self._sim.schedule(delay, self._fire, self._generation)

    def cancel(self) -> None:
        """Suppress any pending firing."""
        self._generation += 1
        self._armed = False
        self.expiry = float("inf")

    def _fire(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by restart() or cancel()
        self._armed = False
        self.expiry = float("inf")
        self._callback()
