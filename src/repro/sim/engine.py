"""Discrete-event simulation engine.

A :class:`Simulator` owns a monotonic virtual clock and a pluggable event
queue (see :mod:`repro.sim.eventq`).  The dispatch contract is a total
order by ``(time, insertion sequence)``: earlier virtual times first, and
among events carrying the same timestamp, the one scheduled first runs
first -- which keeps runs fully deterministic regardless of which queue
implementation is selected.

Two queues are available, selected by ``Simulator(scheduler=...)`` or the
``REPRO_SCHEDULER`` environment variable: ``"calendar"`` (default, a lazy
sorted-batch queue with O(1) amortized insert for the near-monotonic
timestamps a network DES produces) and ``"heap"`` (the classic binary
heap).  Both dispatch in byte-identical order.

Cancellable timers (used heavily by TCP retransmission logic) are provided
by :class:`Timer`.  A timer keeps at most a handful of queue entries alive
no matter how often it is restarted: ``restart`` only schedules a wake-up
when the new expiry is earlier than every outstanding one, and a wake-up
that finds the deadline still in the future re-arms itself at the current
expiry.  This turns the per-ACK ``restart(rto)`` pattern from one queue
entry per ACK into about two per RTO interval.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, List, Optional

from ..telemetry.profiler import HEAP_SAMPLE_MASK, RunProfiler
from ..telemetry.runtime import get_active
from .eventq import (
    SCHEDULER_ENV,
    SimulationError,
    SimulationStalled,
    make_event_queue,
)

__all__ = [
    "Simulator",
    "Timer",
    "SimulationError",
    "SimulationStalled",
    "SCHEDULER_ENV",
]

_INF = float("inf")


class Simulator:
    """Event loop with a virtual clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.001, callback, arg1, arg2)
        sim.run(until=1.0)

    ``scheduler`` selects the event-queue implementation by name
    (``"calendar"`` or ``"heap"``); when omitted, ``REPRO_SCHEDULER``
    decides, defaulting to ``"calendar"``.  (This is the *event*
    scheduler; packet schedulers -- FIFO/DWRR/strict-priority -- live in
    :mod:`repro.sim.scheduler` and are per-port.)

    ``schedule`` and ``schedule_at`` are instance attributes bound
    directly to the queue's methods, so the per-event insert path has no
    delegation layer on top of the queue itself.
    """

    __slots__ = ("_q", "schedule", "schedule_at", "_running", "_profiler")

    def __init__(self, scheduler: Optional[str] = None) -> None:
        self._q = make_event_queue(scheduler)
        # Direct bindings: sim.schedule(...) IS the queue's insert.
        self.schedule: Callable[..., None] = self._q.schedule
        self.schedule_at: Callable[..., None] = self._q.schedule_at
        self._running: bool = False
        telemetry = get_active()
        self._profiler: Optional[RunProfiler] = (
            telemetry.profiler if telemetry is not None else None
        )

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._q.now

    @property
    def scheduler(self) -> str:
        """Name of the active event-queue implementation."""
        return self._q.kind

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far.

        With the ``"heap"`` scheduler this is updated per dispatch, so a
        callback can observe a live value mid-run.  The ``"calendar"``
        scheduler's fast drain path synchronizes it at batch boundaries
        instead (that is where its throughput comes from); it is always
        exact between ``run()`` calls, and exact per-event whenever a
        profiler or ``no_progress_limit`` puts the engine on the
        instrumented loop.
        """
        return self._q.events_processed

    @property
    def profiler(self) -> Optional[RunProfiler]:
        """Profiler collecting run statistics, if one is attached."""
        return self._profiler

    @profiler.setter
    def profiler(self, profiler: Optional[RunProfiler]) -> None:
        self._profiler = profiler

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including lazily cancelled ones)."""
        return len(self._q)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        raise_on_stall: bool = False,
        no_progress_limit: Optional[int] = None,
    ) -> None:
        """Dispatch events in time order.

        Stops when the event queue drains, when the next event lies beyond
        ``until``, or after ``max_events`` dispatches.  On an ``until`` stop
        the clock is advanced to ``until`` so that subsequent scheduling is
        relative to the requested horizon.

        ``raise_on_stall=True`` turns a ``max_events`` exhaustion with
        events still runnable into a :class:`SimulationStalled` instead of
        a silent truncation (callers using ``max_events`` as a cooperative
        budget keep the default).  ``no_progress_limit`` additionally
        raises when that many consecutive events dispatch without the
        virtual clock advancing -- the signature of an event loop
        rescheduling itself at the same instant forever.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            q = self._q
            start_events = q.events_processed
            limit = None if max_events is None else start_events + max_events
            profiler = self._profiler
            if profiler is None and no_progress_limit is None:
                # Fast path: the queue owns the dispatch loop.
                q.drain(until, limit)
            else:
                self._run_instrumented(until, limit, profiler, no_progress_limit)
            if (
                raise_on_stall
                and limit is not None
                and q.events_processed >= limit
                and len(q)
            ):
                head = q.peek_when()
                if until is None or (head is not None and head <= until):
                    raise SimulationStalled(
                        clock=q.now,
                        events=q.events_processed - start_events,
                        pending=len(q),
                        reason="budget",
                    )
            if until is not None and q.now < until:
                q.now = until
        finally:
            self._running = False

    def _run_instrumented(
        self,
        until: Optional[float],
        limit: Optional[int],
        profiler: Optional[RunProfiler],
        no_progress_limit: Optional[int],
    ) -> None:
        """Per-event loop: profiler sampling and/or no-progress detection.

        Uses the queue's single-event ``pop_due`` API, so both queue
        implementations keep ``events_processed`` live here.
        """
        q = self._q
        start_events = q.events_processed
        until_bound = _INF if until is None else until
        wall_start = perf_counter()
        virtual_start = q.now
        peak_depth = len(q)
        last_clock = q.now
        same_clock = 0
        no_progress_stall = False
        while True:
            if limit is not None and q.events_processed >= limit:
                break
            event = q.pop_due(until_bound)
            if event is None:
                break
            when = event[0]
            event[1](*event[2])
            if no_progress_limit is not None:
                if when > last_clock:
                    last_clock = when
                    same_clock = 0
                else:
                    same_clock += 1
                    if same_clock >= no_progress_limit:
                        no_progress_stall = True
                        break
            if (
                profiler is not None
                and q.events_processed & HEAP_SAMPLE_MASK == 0
                and len(q) > peak_depth
            ):
                peak_depth = len(q)
        if profiler is not None:
            profiler.record_run(
                events=q.events_processed - start_events,
                wall_seconds=perf_counter() - wall_start,
                virtual_seconds=q.now - virtual_start,
                peak_heap_depth=peak_depth,
            )
        if no_progress_stall:
            raise SimulationStalled(
                clock=q.now,
                events=q.events_processed - start_events,
                pending=len(q),
                reason="no-progress",
            )

    def run_until_idle(
        self,
        max_events: int = 100_000_000,
        raise_on_stall: bool = True,
        no_progress_limit: Optional[int] = None,
    ) -> None:
        """Run until no events remain (bounded by ``max_events``).

        Exhausting ``max_events`` with events still queued means the run
        did not reach idle -- by default that raises
        :class:`SimulationStalled` (with the clock, dispatch count and
        queue depth) instead of returning a silently truncated simulation.
        """
        self.run(
            until=None,
            max_events=max_events,
            raise_on_stall=raise_on_stall,
            no_progress_limit=no_progress_limit,
        )


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    ``restart`` supersedes any previously scheduled firing; ``cancel``
    suppresses the pending firing.  Both are O(1).

    Implementation: deadline polling.  The timer keeps ``_wakes``, the
    strictly-ascending times of its outstanding wake-up events, and
    maintains one invariant -- *while armed, the earliest outstanding
    wake-up is at or before the expiry*.  ``restart`` therefore only
    schedules when the new expiry is earlier than every outstanding
    wake-up (only then is the invariant at risk); a wake-up that arrives
    early (because the deadline moved later after it was scheduled)
    re-arms itself at the current expiry.  The firing time is exact: the
    callback runs at precisely ``expiry``, never late, because a wake-up
    exists at or before it and re-arming from there lands on it.

    Compared to the seed's push-per-restart + generation-counter design,
    the steady-state TCP pattern (``restart(rto)`` on every ACK) costs no
    queue traffic at all until an RTO interval actually elapses.
    """

    __slots__ = ("_sim", "_callback", "_armed", "expiry", "_wakes")

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._armed = False
        self.expiry: float = _INF
        self._wakes: List[float] = []

    @property
    def armed(self) -> bool:
        """Whether a firing is currently pending."""
        return self._armed

    def restart(self, delay: float) -> None:
        """(Re)schedule the timer ``delay`` seconds from now."""
        self._armed = True
        self.expiry = when = self._sim.now + delay
        wakes = self._wakes
        if not wakes or when < wakes[0]:
            wakes.insert(0, when)
            self._sim.schedule(delay, self._wake)

    def cancel(self) -> None:
        """Suppress any pending firing.  Outstanding wake-ups stay queued
        and discard themselves when they pop (lazy cancellation)."""
        self._armed = False
        self.expiry = _INF

    def _wake(self) -> None:
        wakes = self._wakes
        del wakes[0]  # wake-ups pop in time order: this is the earliest
        if not self._armed:
            return
        expiry = self.expiry
        if expiry <= self._sim.now:
            self._armed = False
            self.expiry = _INF
            self._callback()
        elif not wakes or expiry < wakes[0]:
            # Restore the invariant: no outstanding wake-up at or before
            # the (moved-later) expiry, so plant one exactly there.
            wakes.insert(0, expiry)
            self._sim.schedule_at(expiry, self._wake)
