"""Instrumentation: queue sampling and drop tracing.

:class:`QueueMonitor` reproduces the paper's Figure 10 methodology: it
samples the instantaneous queue length of a port at a fixed interval and
records ``(time, packets, bytes)`` triples.  :class:`DropTracer` hooks a
port's drop callback and tallies drops by reason and by flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.stats_util import percentile as _percentile
from .engine import Simulator
from .packet import Packet
from .port import Port

__all__ = ["QueueMonitor", "QueueSample", "DropTracer"]


class QueueSample:
    """One observation of a port's queue."""

    __slots__ = ("time", "packets", "bytes")

    def __init__(self, time: float, packets: int, bytes_: int) -> None:
        self.time = time
        self.packets = packets
        self.bytes = bytes_

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QueueSample t={self.time:.6f} pkts={self.packets}>"


class QueueMonitor:
    """Periodically samples a port's queue occupancy.

    Args:
        sim: the simulator.
        port: the port to observe.
        interval: sampling period in seconds.
        start: first sample time (absolute).
        stop: optional absolute time after which sampling ceases.
    """

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        interval: float,
        start: float = 0.0,
        stop: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.port = port
        self.interval = interval
        self.stop = stop
        self.samples: List[QueueSample] = []
        sim.schedule_at(max(start, sim.now), self._sample)

    def _sample(self) -> None:
        now = self.sim.now
        if self.stop is not None and now > self.stop:
            return
        self.samples.append(
            QueueSample(now, self.port.queue_packets, self.port.queue_bytes)
        )
        self.sim.schedule(self.interval, self._sample)

    # ------------------------------------------------------------- analysis

    def average_packets(self) -> float:
        """Mean queue length in packets over all samples."""
        if not self.samples:
            return 0.0
        return sum(s.packets for s in self.samples) / len(self.samples)

    def max_packets(self) -> int:
        """Peak sampled queue length in packets."""
        return max((s.packets for s in self.samples), default=0)

    def series(self) -> Tuple[List[float], List[int]]:
        """(times, packet counts) suitable for plotting Figure 10."""
        return [s.time for s in self.samples], [s.packets for s in self.samples]

    def series_bytes(self) -> Tuple[List[float], List[int]]:
        """(times, byte counts), the byte-occupancy companion of
        :meth:`series`."""
        return [s.time for s in self.samples], [s.bytes for s in self.samples]

    def percentile(self, p: float, bytes_: bool = False) -> float:
        """p-th percentile of sampled depth (packets, or bytes when
        ``bytes_`` is set), by linear interpolation on the sorted samples
        (the shared :func:`repro.core.stats_util.percentile` definition,
        consistent with the FCT breakdown's p99)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return 0.0
        values = [(s.bytes if bytes_ else s.packets) for s in self.samples]
        return _percentile(values, p)

    def percentiles(
        self, ps: Tuple[float, ...] = (50.0, 95.0, 99.0), bytes_: bool = False
    ) -> Dict[float, float]:
        """Convenience bundle of :meth:`percentile` values (metrics
        snapshots report p50/p95/p99 of queue depth)."""
        return {p: self.percentile(p, bytes_=bytes_) for p in ps}


class DropTracer:
    """Counts packet drops on a port by reason and flow.

    Chains to any previously installed ``port.on_drop`` callback, so
    several observers (and the telemetry layer) can coexist on one port.
    """

    def __init__(self, port: Port) -> None:
        self.total = 0
        self.by_reason: Dict[str, int] = {}
        self.by_flow: Dict[int, int] = {}
        self.events: List[Tuple[float, int, str]] = []
        self._port = port
        self._chained = port.on_drop
        port.on_drop = self._record

    def _record(self, packet: Packet, reason: str) -> None:
        if self._chained is not None:
            self._chained(packet, reason)
        self.total += 1
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        self.by_flow[packet.flow_id] = self.by_flow.get(packet.flow_id, 0) + 1
        self.events.append((self._port.sim.now, packet.flow_id, reason))
