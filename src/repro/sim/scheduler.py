"""Packet schedulers for egress ports.

A scheduler owns the per-service :class:`PacketQueue` set of one egress port
and decides which queue supplies the next packet to serialize.  Three
disciplines are provided:

* :class:`FifoScheduler` -- a single queue, the default everywhere.
* :class:`StrictPriorityScheduler` -- lowest service index first.
* :class:`DwrrScheduler` -- Deficit Weighted Round Robin, used by the paper's
  packet-scheduler experiment (Figure 13, three services with weights 2:1:1).

Sojourn-time AQMs compose naturally with any of these because the congestion
signal is stamped per packet at enqueue and read at dequeue, regardless of
which queue the packet waited in -- this is exactly the property TCN and ECN#
rely on (Section 3.2 of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from .packet import Packet
from .queues import PacketQueue

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "StrictPriorityScheduler",
    "DwrrScheduler",
]


class Scheduler(ABC):
    """Base class: a set of queues plus a service discipline."""

    def __init__(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise ValueError("scheduler needs at least one queue")
        self.queues: List[PacketQueue] = [PacketQueue(service=i) for i in range(num_queues)]

    @property
    def num_queues(self) -> int:
        return len(self.queues)

    def queue_for(self, packet: Packet) -> PacketQueue:
        """Select the queue an arriving packet joins (by service class)."""
        index = packet.service
        if not 0 <= index < len(self.queues):
            index = len(self.queues) - 1  # out-of-range services use the last queue
        return self.queues[index]

    def enqueue(self, packet: Packet) -> None:
        """Append ``packet`` to its service queue."""
        self.queue_for(packet).push(packet)

    @abstractmethod
    def dequeue(self) -> Optional[Packet]:
        """Remove and return the next packet to transmit, or None if idle."""

    def is_empty(self) -> bool:
        return all(queue.is_empty() for queue in self.queues)

    @property
    def total_bytes(self) -> int:
        return sum(queue.byte_length for queue in self.queues)

    @property
    def total_packets(self) -> int:
        return sum(queue.packet_length for queue in self.queues)


class FifoScheduler(Scheduler):
    """Single FIFO queue."""

    def __init__(self) -> None:
        super().__init__(num_queues=1)

    def dequeue(self) -> Optional[Packet]:
        queue = self.queues[0]
        return queue.pop() if not queue.is_empty() else None


class StrictPriorityScheduler(Scheduler):
    """Serve the lowest-index non-empty queue first."""

    def dequeue(self) -> Optional[Packet]:
        for queue in self.queues:
            if not queue.is_empty():
                return queue.pop()
        return None


class DwrrScheduler(Scheduler):
    """Deficit Weighted Round Robin (Shreedhar & Varghese).

    Each queue ``i`` has quantum ``weight[i] * base_quantum`` bytes.  When the
    round-robin pointer reaches a backlogged queue its deficit grows by one
    quantum; the queue then sends packets while its deficit covers the head
    packet.  Idle queues have their deficit reset so they cannot bank credit.

    ``dequeue`` returns a single packet per call (the port serializes one
    packet at a time); scheduler state persists across calls so the byte
    shares converge to the configured weights.
    """

    def __init__(self, weights: Sequence[float], base_quantum: int = 1500) -> None:
        if not weights:
            raise ValueError("DWRR needs at least one weight")
        if any(w <= 0 for w in weights):
            raise ValueError("DWRR weights must be positive")
        super().__init__(num_queues=len(weights))
        self.weights = list(weights)
        self.quanta = [int(w * base_quantum) for w in weights]
        self._deficits = [0] * len(weights)
        self._current = 0
        self._fresh_round = True  # whether the current queue still needs its quantum

    def dequeue(self) -> Optional[Packet]:
        if self.is_empty():
            # Reset so a new busy period starts from a clean slate.
            self._deficits = [0] * self.num_queues
            self._fresh_round = True
            return None

        # At most 2N pointer advances are needed to find a sendable packet:
        # each backlogged queue is visited at most twice (once to add its
        # quantum, once more after the largest-packet bound is covered).
        for _ in range(2 * self.num_queues + 1):
            queue = self.queues[self._current]
            if queue.is_empty():
                self._deficits[self._current] = 0
                self._advance()
                continue
            if self._fresh_round:
                self._deficits[self._current] += self.quanta[self._current]
                self._fresh_round = False
            head = queue.peek()
            assert head is not None
            if head.size <= self._deficits[self._current]:
                self._deficits[self._current] -= head.size
                packet = queue.pop()
                if queue.is_empty():
                    self._deficits[self._current] = 0
                    self._advance()
                return packet
            self._advance()

        # Quanta smaller than the packet size can require several rounds of
        # credit accumulation; recurse via iteration until sendable.
        return self._accumulate_until_sendable()

    def _advance(self) -> None:
        self._current = (self._current + 1) % self.num_queues
        self._fresh_round = True

    def _accumulate_until_sendable(self) -> Optional[Packet]:
        # Defensive path for quanta << MTU; bounded because deficits grow
        # by a positive quantum for some backlogged queue every full cycle.
        for _ in range(10_000):
            queue = self.queues[self._current]
            if queue.is_empty():
                self._deficits[self._current] = 0
                self._advance()
                continue
            if self._fresh_round:
                self._deficits[self._current] += self.quanta[self._current]
                self._fresh_round = False
            head = queue.peek()
            assert head is not None
            if head.size <= self._deficits[self._current]:
                self._deficits[self._current] -= head.size
                packet = queue.pop()
                if queue.is_empty():
                    self._deficits[self._current] = 0
                    self._advance()
                return packet
            self._advance()
        raise RuntimeError("DWRR failed to accumulate credit; quantum too small")
