"""Nodes, switches, hosts and network wiring.

A :class:`Network` owns the simulator, the nodes, and the links between
them.  After topology construction, :meth:`Network.compute_routes` installs
static shortest-path routing tables with ECMP: every node learns, for each
destination host, the set of equal-cost next-hop ports; a deterministic
per-flow hash picks among them (per-flow ECMP, as in the paper's leaf-spine
simulations).

Hosts carry transport endpoints (senders and sinks, see ``repro.tcp``) and an
optional netem-style egress delay stage used to emulate base-RTT variation
(see ``repro.netem``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, Tuple

from .engine import Simulator
from .packet import Packet
from .port import Port
from .scheduler import Scheduler
from .units import mb

if TYPE_CHECKING:  # pragma: no cover
    from ..core.base import Aqm

__all__ = ["Node", "Switch", "Host", "Network", "Endpoint"]

DEFAULT_BUFFER_BYTES = mb(1)
"""Default per-port buffer: 1 MB (~667 full-size packets), a typical
shallow-buffer slice of a Tofino-class shared buffer."""


class Endpoint(Protocol):
    """Anything that can receive packets addressed to a flow on a host."""

    def receive(self, packet: Packet) -> None: ...


def _ecmp_hash(flow_id: int, salt: int) -> int:
    """Deterministic multiplicative hash for per-flow ECMP path selection."""
    value = (flow_id * 2654435761 + salt * 40503) & 0xFFFFFFFF
    value ^= value >> 16
    value = (value * 2246822519) & 0xFFFFFFFF
    value ^= value >> 13
    return value


class Node:
    """Base class: a named device with egress ports and neighbours."""

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.name = name
        self.ports: List[Port] = []
        self.neighbors: Dict[str, Port] = {}  # neighbour name -> egress port
        self._salt = 0  # set by Network when registered, for ECMP hashing

    def attach_port(self, port: Port, neighbor_name: str) -> None:
        self.ports.append(port)
        self.neighbors[neighbor_name] = port

    def receive(self, packet: Packet) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Switch(Node):
    """A switch forwards by destination with ECMP across equal-cost ports."""

    def __init__(self, network: "Network", name: str) -> None:
        super().__init__(network, name)
        self.routes: Dict[str, List[Port]] = {}

    def receive(self, packet: Packet) -> None:
        ports = self.routes.get(packet.dst)
        if not ports:
            raise RuntimeError(f"switch {self.name} has no route to {packet.dst}")
        if len(ports) == 1:
            port = ports[0]
        else:
            port = ports[_ecmp_hash(packet.flow_id, self._salt) % len(ports)]
        port.send(packet)


class Host(Node):
    """An end host: transport endpoints plus an optional egress delay stage.

    The delay stage emulates netem: before a packet reaches the host's NIC
    queue it is held for a per-packet delay supplied by ``egress_delay_fn``
    (typically constant per flow; see ``repro.netem.delay``).
    """

    def __init__(self, network: "Network", name: str) -> None:
        super().__init__(network, name)
        self._endpoints: Dict[int, Endpoint] = {}
        self.egress_delay_fn: Optional[Callable[[Packet], float]] = None

    @property
    def uplink(self) -> Port:
        """The host's single egress port (hosts are single-homed here)."""
        if len(self.ports) != 1:
            raise RuntimeError(
                f"host {self.name} has {len(self.ports)} ports; expected 1"
            )
        return self.ports[0]

    def register_endpoint(self, flow_id: int, endpoint: Endpoint) -> None:
        if flow_id in self._endpoints:
            raise ValueError(f"flow {flow_id} already registered on {self.name}")
        self._endpoints[flow_id] = endpoint

    def unregister_endpoint(self, flow_id: int) -> None:
        self._endpoints.pop(flow_id, None)

    def transmit(self, packet: Packet) -> None:
        """Send a packet from a local transport towards the network."""
        port = self.uplink
        if self.egress_delay_fn is not None:
            delay = self.egress_delay_fn(packet)
            if delay > 0:
                self.sim.schedule(delay, port.send, packet)
                return
        port.send(packet)

    def receive(self, packet: Packet) -> None:
        endpoint = self._endpoints.get(packet.flow_id)
        if endpoint is not None:
            endpoint.receive(packet)
        # Packets for finished/unknown flows are silently consumed, matching
        # a real host dropping segments for closed connections.


class Network:
    """Container for nodes + links; computes ECMP routes over the topology."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.nodes: Dict[str, Node] = {}
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}

    # ---------------------------------------------------------- construction

    def add_host(self, name: str) -> Host:
        host = Host(self, name)
        self._register(host)
        self.hosts[name] = host
        return host

    def add_switch(self, name: str) -> Switch:
        switch = Switch(self, name)
        self._register(switch)
        self.switches[name] = switch
        return switch

    def _register(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        node._salt = len(self.nodes) + 1
        self.nodes[node.name] = node

    def connect(
        self,
        a: Node,
        b: Node,
        rate_bps: float,
        propagation_delay: float,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        aqm_a_to_b: Optional["Aqm"] = None,
        aqm_b_to_a: Optional["Aqm"] = None,
        scheduler_a_to_b: Optional[Scheduler] = None,
        scheduler_b_to_a: Optional[Scheduler] = None,
        buffer_bytes_a_to_b: Optional[int] = None,
        buffer_bytes_b_to_a: Optional[int] = None,
    ) -> Tuple[Port, Port]:
        """Create a full-duplex link: one egress port on each side.

        ``buffer_bytes`` applies to both directions unless a per-direction
        override is given (host uplinks model deep qdisc buffers while
        switch ports stay shallow)."""
        port_ab = Port(
            self.sim,
            name=f"{a.name}->{b.name}",
            rate_bps=rate_bps,
            propagation_delay=propagation_delay,
            buffer_bytes=(
                buffer_bytes_a_to_b if buffer_bytes_a_to_b is not None else buffer_bytes
            ),
            aqm=aqm_a_to_b,
            scheduler=scheduler_a_to_b,
        )
        port_ba = Port(
            self.sim,
            name=f"{b.name}->{a.name}",
            rate_bps=rate_bps,
            propagation_delay=propagation_delay,
            buffer_bytes=(
                buffer_bytes_b_to_a if buffer_bytes_b_to_a is not None else buffer_bytes
            ),
            aqm=aqm_b_to_a,
            scheduler=scheduler_b_to_a,
        )
        port_ab.peer = b
        port_ba.peer = a
        a.attach_port(port_ab, b.name)
        b.attach_port(port_ba, a.name)
        return port_ab, port_ba

    # --------------------------------------------------------------- routing

    def compute_routes(self) -> None:
        """Install ECMP shortest-path routes to every host on every switch.

        Runs a BFS from each destination host over the (unweighted) adjacency
        graph; a switch's next hops towards a destination are all neighbours
        strictly closer to it (the equal-cost set).
        """
        adjacency: Dict[str, List[str]] = {
            name: list(node.neighbors.keys()) for name, node in self.nodes.items()
        }
        for dst_name in self.hosts:
            distance = self._bfs_distances(adjacency, dst_name)
            for switch in self.switches.values():
                if switch.name not in distance:
                    continue
                here = distance[switch.name]
                next_hops = [
                    switch.neighbors[nbr]
                    for nbr in adjacency[switch.name]
                    if distance.get(nbr, float("inf")) == here - 1
                ]
                if next_hops:
                    switch.routes[dst_name] = next_hops

    @staticmethod
    def _bfs_distances(adjacency: Dict[str, List[str]], source: str) -> Dict[str, int]:
        distance = {source: 0}
        frontier = deque([source])
        while frontier:
            current = frontier.popleft()
            for neighbor in adjacency[current]:
                if neighbor not in distance:
                    distance[neighbor] = distance[current] + 1
                    frontier.append(neighbor)
        return distance

    # ------------------------------------------------------------------ run

    def run(self, until: Optional[float] = None) -> None:
        """Convenience passthrough to the simulator."""
        self.sim.run(until=until)
