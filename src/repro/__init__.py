"""repro: reproduction of "Enabling ECN for Datacenter Networks with RTT
Variations" (ECN#, CoNEXT 2019).

The package is organised as:

* :mod:`repro.core` -- the ECN# AQM (Algorithm 1) and its baselines
  (DCTCP-RED, CoDel, TCN) plus threshold math (Equations 1-2).
* :mod:`repro.sim` -- a packet-level discrete-event network simulator.
* :mod:`repro.tcp` -- DCTCP and ECN-enabled NewReno transports.
* :mod:`repro.netem` -- base-RTT variation emulation (Table 1 components).
* :mod:`repro.topology` -- testbed star, incast rig, leaf-spine fabric.
* :mod:`repro.workloads` -- web-search / data-mining CDFs, Poisson arrivals,
  incast bursts.
* :mod:`repro.dataplane` -- Tofino pipeline model (Algorithm 2 clock,
  register constraints).
* :mod:`repro.measurement` -- in-simulator RTT probing (PingMesh stand-in).
* :mod:`repro.telemetry` -- metrics registry, flight-recorder tracing,
  profiling, and run provenance (opt-in, near-free when disabled).
* :mod:`repro.experiments` -- harness regenerating every table and figure.
"""

from .core import (
    Codel,
    DctcpRed,
    EcnSharp,
    EcnSharpConfig,
    SojournRed,
    Tcn,
    derive_ecn_sharp_params,
    marking_threshold_bytes,
    marking_threshold_seconds,
)
from .sim import Network, Simulator
from .tcp import DctcpSender, FlowHandle, RenoSender, open_flow
from .telemetry import RunManifest, Telemetry, activate

__version__ = "1.1.0"

__all__ = [
    "Codel",
    "DctcpRed",
    "EcnSharp",
    "EcnSharpConfig",
    "SojournRed",
    "Tcn",
    "derive_ecn_sharp_params",
    "marking_threshold_bytes",
    "marking_threshold_seconds",
    "Network",
    "Simulator",
    "DctcpSender",
    "FlowHandle",
    "RenoSender",
    "open_flow",
    "RunManifest",
    "Telemetry",
    "activate",
    "__version__",
]
