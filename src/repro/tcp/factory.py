"""Flow setup: wire a sender and a sink across the network.

``open_flow`` is the single entry point the workload generators and the
examples use: it allocates a flow id, creates the congestion-control variant
requested, registers both endpoints on their hosts, and schedules the flow's
start.  The returned :class:`FlowHandle` exposes flow completion time once
the receiver has all the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Type

from ..sim.network import Host, Network
from ..sim.packet import PacketFactory
from ..sim.units import MSS, ms
from .base import TcpSender
from .dcqcn import DcqcnParams, DcqcnSender
from .dctcp import DctcpSender
from .reno import RenoSender
from .sink import TcpSink

__all__ = ["FlowHandle", "open_flow", "open_dcqcn_flow", "CC_VARIANTS"]

CC_VARIANTS: Dict[str, Type[TcpSender]] = {
    "dctcp": DctcpSender,
    "reno": RenoSender,
    "ecn-tcp": RenoSender,
}


@dataclass
class FlowHandle:
    """A started flow: both endpoints plus identity and timing."""

    flow_id: int
    size_bytes: int
    sender: TcpSender
    sink: TcpSink
    start_time: float
    service: int = 0

    @property
    def completed(self) -> bool:
        """Whether the receiver has every byte."""
        return self.sink.completed

    @property
    def fct(self) -> float:
        """Receiver-side flow completion time (seconds)."""
        if not self.sink.completed:
            raise RuntimeError(f"flow {self.flow_id} not complete")
        return self.sink.completion_time - self.start_time

    @property
    def timeouts(self) -> int:
        return self.sender.stats.timeouts


def open_flow(
    network: Network,
    factory: PacketFactory,
    src: Host,
    dst: Host,
    size_bytes: int,
    cc: str = "dctcp",
    start_time: Optional[float] = None,
    service: int = 0,
    mss: int = MSS,
    init_cwnd: float = 10.0,
    min_rto: float = ms(2),
    on_complete: Optional[Callable[[FlowHandle], None]] = None,
    **sender_kwargs,
) -> FlowHandle:
    """Create and schedule one flow from ``src`` to ``dst``.

    Args:
        network: the wired network (routes must already be computed).
        factory: flow-id allocator shared by the experiment.
        src / dst: endpoint hosts.
        size_bytes: flow size.
        cc: congestion control variant ("dctcp", "reno"/"ecn-tcp").
        start_time: absolute start; defaults to "now".
        service: traffic class (selects the queue under multi-queue
            schedulers).
        on_complete: callback fired with the handle at receiver completion.
        sender_kwargs: forwarded to the sender constructor (e.g. ``g`` for
            DCTCP).

    Returns:
        The :class:`FlowHandle`.
    """
    if src is dst:
        raise ValueError("source and destination hosts must differ")
    try:
        sender_cls = CC_VARIANTS[cc]
    except KeyError:
        raise ValueError(f"unknown congestion control {cc!r}") from None

    sim = network.sim
    flow_id = factory.next_flow_id()
    when = sim.now if start_time is None else start_time
    if when < sim.now:
        raise ValueError("flow start time is in the past")

    handle_box: Dict[str, FlowHandle] = {}

    def _sink_complete(_sink: TcpSink) -> None:
        if on_complete is not None:
            on_complete(handle_box["handle"])

    sender = sender_cls(
        sim,
        src,
        flow_id,
        dst.name,
        size_bytes,
        mss=mss,
        init_cwnd=init_cwnd,
        min_rto=min_rto,
        service=service,
        **sender_kwargs,
    )
    sink = TcpSink(
        sim,
        dst,
        flow_id,
        src.name,
        total_segments=sender.total_segments,
        service=service,
        on_complete=_sink_complete,
    )
    src.register_endpoint(flow_id, sender)
    dst.register_endpoint(flow_id, sink)

    handle = FlowHandle(
        flow_id=flow_id,
        size_bytes=size_bytes,
        sender=sender,
        sink=sink,
        start_time=when,
        service=service,
    )
    handle_box["handle"] = handle
    sim.schedule_at(when, sender.start)
    return handle


def open_dcqcn_flow(
    network: Network,
    factory: PacketFactory,
    src: Host,
    dst: Host,
    size_bytes: int,
    line_rate_bps: float,
    params: Optional[DcqcnParams] = None,
    start_time: Optional[float] = None,
    service: int = 0,
    mss: int = MSS,
    min_rto: float = ms(2),
) -> "DcqcnFlowHandle":
    """Create and schedule one rate-based DCQCN flow (Section 3.5 path).

    Mirrors :func:`open_flow` but drives the RoCE-style
    :class:`~repro.tcp.dcqcn.DcqcnSender`, which paces at an explicit rate
    instead of running a congestion window.
    """
    if src is dst:
        raise ValueError("source and destination hosts must differ")
    sim = network.sim
    flow_id = factory.next_flow_id()
    when = sim.now if start_time is None else start_time
    if when < sim.now:
        raise ValueError("flow start time is in the past")

    sender = DcqcnSender(
        sim,
        src,
        flow_id,
        dst.name,
        size_bytes,
        line_rate_bps=line_rate_bps,
        params=params,
        mss=mss,
        min_rto=min_rto,
        service=service,
    )
    sink = TcpSink(
        sim,
        dst,
        flow_id,
        src.name,
        total_segments=sender.total_segments,
        service=service,
    )
    src.register_endpoint(flow_id, sender)
    dst.register_endpoint(flow_id, sink)
    sim.schedule_at(when, sender.start)
    return DcqcnFlowHandle(
        flow_id=flow_id,
        size_bytes=size_bytes,
        sender=sender,
        sink=sink,
        start_time=when,
        service=service,
    )


@dataclass
class DcqcnFlowHandle:
    """A started DCQCN flow: endpoints plus identity and timing."""

    flow_id: int
    size_bytes: int
    sender: DcqcnSender
    sink: TcpSink
    start_time: float
    service: int = 0

    @property
    def completed(self) -> bool:
        return self.sink.completed

    @property
    def fct(self) -> float:
        if not self.sink.completed:
            raise RuntimeError(f"flow {self.flow_id} not complete")
        return self.sink.completion_time - self.start_time
