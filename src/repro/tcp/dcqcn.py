"""DCQCN: rate-based ECN congestion control (Zhu et al., SIGCOMM 2015).

DCQCN is the RoCEv2 transport the paper's Section 3.5 discussion targets:
unlike window-based DCTCP it paces packets at an explicit rate and adjusts
that rate from Congestion Notification Packets (CNPs), so it needs the
switch to mark *probabilistically* between Kmin and Kmax -- cut-off marking
synchronises rate cuts across flows and breaks convergence.  This module
provides the reaction-point (sender) algorithm so the
:class:`~repro.core.ecn_sharp_prob.EcnSharpProbabilistic` extension can be
exercised end to end.

Simplifications relative to the full RoCE stack (documented in DESIGN.md):

* CNP generation is modelled by the receiver echoing ECE on ACKs; the
  sender rate-limits its reaction to one cut per ``cnp_interval`` exactly
  as the RP algorithm prescribes.
* The fabric is assumed lossless-by-configuration (PFC): experiments give
  DCQCN deep buffers; residual drops recover via go-back-N on a timeout,
  the RoCE NACK analogue.

The RP (reaction point) algorithm follows the paper:

* on CNP:   ``Rt = Rc; Rc *= (1 - alpha/2); alpha = (1-g)alpha + g``
* alpha decays by ``(1-g)`` every ``alpha_timer`` without CNPs;
* rate increase every ``increase_timer``: fast recovery (first ``F``
  iterations) moves ``Rc`` halfway back to ``Rt``; afterwards additive
  increase raises ``Rt`` by ``rai`` first (hyper increase is omitted --
  it only matters at 40G+ recovery timescales).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..sim.engine import Simulator, Timer
from ..sim.network import Host
from ..sim.packet import Ecn, Packet
from ..sim.units import HEADER_SIZE, MSS, ms, us
from ..telemetry.runtime import dataplane_telemetry

__all__ = ["DcqcnSender", "DcqcnParams"]


class DcqcnParams:
    """RP-algorithm constants (defaults follow the DCQCN paper, scaled to
    a 10G fabric)."""

    __slots__ = (
        "g",
        "cnp_interval",
        "alpha_timer",
        "increase_timer",
        "fast_recovery_rounds",
        "rai",
        "min_rate",
    )

    def __init__(
        self,
        g: float = 1.0 / 16.0,
        cnp_interval: float = us(50),
        alpha_timer: float = us(55),
        increase_timer: float = us(55),
        fast_recovery_rounds: int = 5,
        rai: float = 40e6,
        min_rate: float = 10e6,
    ) -> None:
        if not 0 < g <= 1:
            raise ValueError("g must be in (0, 1]")
        if min(cnp_interval, alpha_timer, increase_timer) <= 0:
            raise ValueError("timers must be positive")
        if fast_recovery_rounds <= 0:
            raise ValueError("fast_recovery_rounds must be positive")
        if rai <= 0 or min_rate <= 0:
            raise ValueError("rates must be positive")
        self.g = g
        self.cnp_interval = cnp_interval
        self.alpha_timer = alpha_timer
        self.increase_timer = increase_timer
        self.fast_recovery_rounds = fast_recovery_rounds
        self.rai = rai
        self.min_rate = min_rate


class DcqcnSender:
    """Rate-paced reliable sender with DCQCN's RP rate control.

    Packets are emitted one serialization interval apart at the current
    rate ``Rc``; cumulative ACKs (with ECE echoing CE marks) drive the RP
    state machine.  A simple retransmission timeout with go-back-N provides
    the RoCE NACK/retransmit analogue for the rare loss case.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        dst: str,
        size_bytes: int,
        line_rate_bps: float,
        params: Optional[DcqcnParams] = None,
        mss: int = MSS,
        min_rto: float = ms(2),
        service: int = 0,
        on_complete: Optional[Callable[["DcqcnSender"], None]] = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError("flow size must be positive")
        if line_rate_bps <= 0:
            raise ValueError("line rate must be positive")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.src = host.name
        self.dst = dst
        self.size_bytes = size_bytes
        self.mss = mss
        self.service = service
        self.on_complete = on_complete
        self.params = params if params is not None else DcqcnParams()
        self.line_rate = line_rate_bps

        self.total_segments = max(1, math.ceil(size_bytes / mss))
        self._last_segment_payload = size_bytes - (self.total_segments - 1) * mss

        # RP state.
        self.rc = line_rate_bps  # current rate
        self.rt = line_rate_bps  # target rate
        self.alpha = 1.0
        self._recovery_round = 0
        self._last_cnp_time = -math.inf
        self._alpha_timer = Timer(sim, self._alpha_decay)
        self._increase_timer = Timer(sim, self._rate_increase)

        # Reliability state.
        self.highest_acked = 0
        self.send_next = 0
        self.min_rto = min_rto
        self._rto_timer = Timer(sim, self._on_rto)
        self._pacing_armed = False

        self.telemetry = dataplane_telemetry()
        self.started = False
        self.completed = False
        self.start_time = -1.0
        self.completion_time = -1.0
        self.cnps_received = 0
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        self.start_time = self.sim.now
        self._alpha_timer.restart(self.params.alpha_timer)
        self._increase_timer.restart(self.params.increase_timer)
        self._send_next_packet()

    @property
    def flow_completion_time(self) -> float:
        if not self.completed:
            raise RuntimeError("flow not complete")
        return self.completion_time - self.start_time

    # --------------------------------------------------------------- pacing

    def _segment_payload(self, seq: int) -> int:
        if seq == self.total_segments - 1:
            return self._last_segment_payload
        return self.mss

    def _send_next_packet(self) -> None:
        self._pacing_armed = False
        if self.completed or self.send_next >= self.total_segments:
            return
        seq = self.send_next
        packet = Packet(
            flow_id=self.flow_id,
            src=self.src,
            dst=self.dst,
            seq=seq,
            size=self._segment_payload(seq) + HEADER_SIZE,
            ecn=Ecn.ECT0,
            service=self.service,
        )
        packet.sent_time = self.sim.now
        self.host.transmit(packet)
        self.segments_sent += 1
        self.send_next += 1
        if not self._rto_timer.armed:
            self._rto_timer.restart(max(self.min_rto, ms(1)))
        self._arm_pacing()

    def _arm_pacing(self) -> None:
        if self._pacing_armed or self.completed:
            return
        if self.send_next >= self.total_segments:
            return
        gap = self.mss * 8.0 / max(self.rc, self.params.min_rate)
        self._pacing_armed = True
        self.sim.schedule(gap, self._send_next_packet)

    # ------------------------------------------------------------- RP logic

    def receive(self, packet: Packet) -> None:
        if not packet.is_ack or self.completed:
            return
        if packet.ece:
            self._on_cnp()
        if packet.seq > self.highest_acked:
            self.highest_acked = packet.seq
            if self.highest_acked >= self.total_segments:
                self._complete()
                return
            self._rto_timer.restart(max(self.min_rto, ms(1)))

    def _on_cnp(self) -> None:
        now = self.sim.now
        if now - self._last_cnp_time < self.params.cnp_interval:
            return  # RP reacts at most once per CNP interval
        self._last_cnp_time = now
        self.cnps_received += 1
        self.rt = self.rc
        old_rc = self.rc
        self.rc = max(self.rc * (1.0 - self.alpha / 2.0), self.params.min_rate)
        self.alpha = (1.0 - self.params.g) * self.alpha + self.params.g
        self._recovery_round = 0
        if self.telemetry is not None:
            self.telemetry.on_rate(self, old_rc, self.rc, "cnp-cut")

    def _alpha_decay(self) -> None:
        if self.completed:
            return
        if self.sim.now - self._last_cnp_time >= self.params.alpha_timer:
            self.alpha = (1.0 - self.params.g) * self.alpha
        self._alpha_timer.restart(self.params.alpha_timer)

    def _rate_increase(self) -> None:
        if self.completed:
            return
        self._recovery_round += 1
        if self._recovery_round > self.params.fast_recovery_rounds:
            # Additive increase stage: push the target up, then converge.
            self.rt = min(self.rt + self.params.rai, self.line_rate)
        old_rc = self.rc
        self.rc = min((self.rt + self.rc) / 2.0, self.line_rate)
        if self.telemetry is not None and self.rc != old_rc:
            self.telemetry.on_rate(self, old_rc, self.rc, "increase")
        self._increase_timer.restart(self.params.increase_timer)

    # ----------------------------------------------------------- reliability

    def _on_rto(self) -> None:
        if self.completed:
            return
        self.timeouts += 1
        if self.telemetry is not None:
            self.telemetry.on_timer(self, max(self.min_rto, ms(1)) * 2)
        # Go-back-N from the cumulative ACK point (the RoCE NACK analogue).
        self.retransmissions += self.send_next - self.highest_acked
        self.send_next = self.highest_acked
        self._rto_timer.restart(max(self.min_rto, ms(1)) * 2)
        self._arm_pacing()

    # ------------------------------------------------------------ completion

    def _complete(self) -> None:
        self.completed = True
        self.completion_time = self.sim.now
        self._rto_timer.cancel()
        self._alpha_timer.cancel()
        self._increase_timer.cancel()
        self.host.unregister_endpoint(self.flow_id)
        if self.telemetry is not None:
            self.telemetry.on_flow_complete(
                self, self.completion_time - self.start_time
            )
        if self.on_complete is not None:
            self.on_complete(self)
