"""ECN-enabled NewReno: the "regular ECN TCP" of the paper (lambda = 1).

On an ACK carrying ECN-Echo, the window is halved -- but at most once per
round trip (RFC 3168's congestion-window-reduced epoch), implemented by
ignoring further echoes until the ACK level passes the point at which the
reduction was taken.
"""

from __future__ import annotations

from ..sim.packet import Packet
from .base import TcpSender

__all__ = ["RenoSender"]


class RenoSender(TcpSender):
    """TCP sender that halves cwnd on ECN marks (once per window)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cwr_point = -1  # ACK level that ends the current reduction epoch

    def _on_ecn_signal(self, ack: Packet, newly_acked: int) -> None:
        if not ack.ece:
            return
        self.stats.ecn_signals += 1
        if self.highest_acked + newly_acked <= self._cwr_point:
            return  # already reduced for this window of data
        old_cwnd = self.cwnd
        self._halve_window()
        if self.telemetry is not None:
            self.telemetry.on_cwnd(self, old_cwnd, self.cwnd, "ecn-halve")
        self._cwr_point = self.send_next
