"""TCP receiver: cumulative ACKs, ECN echo, flow completion recording.

The sink acknowledges every data segment immediately (no delayed ACKs) and
echoes the CE mark of the segment that triggered the ACK -- the "accurate
ECE" behaviour DCTCP requires so the sender can estimate the marked fraction.
For the Reno variant this per-packet echo is a faithful-enough stand-in for
RFC 3168 ECE latching because Reno reacts at most once per window anyway.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from ..sim.engine import Simulator
from ..sim.network import Host
from ..sim.packet import Ecn, Packet, acquire_packet, release_packet
from ..sim.units import ACK_SIZE

__all__ = ["TcpSink"]


class TcpSink:
    """Receiver endpoint for one flow.

    Args:
        sim: simulator.
        host: the receiving host.
        flow_id: flow identifier (matches the sender's).
        src: the *sender's* host name (destination of ACKs).
        total_segments: number of segments the flow carries.
        on_complete: fired once, when the last in-order byte arrives.  This
            is the receiver-side FCT event used by the experiment harness.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        src: str,
        total_segments: int,
        service: int = 0,
        on_complete: Optional[Callable[["TcpSink"], None]] = None,
    ) -> None:
        if total_segments <= 0:
            raise ValueError("total_segments must be positive")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.src = src
        self.total_segments = total_segments
        self.service = service
        self.on_complete = on_complete

        self.expected = 0  # next in-order segment index
        self._out_of_order: Set[int] = set()
        self.completed = False
        self.completion_time: float = -1.0
        self.segments_received = 0
        self.duplicates_received = 0
        self.ce_received = 0

    def receive(self, packet: Packet) -> None:
        if packet.is_ack:
            return  # sinks only consume data
        self.segments_received += 1
        if packet.ce_marked:
            self.ce_received += 1

        seq = packet.seq
        if seq == self.expected:
            self.expected += 1
            while self.expected in self._out_of_order:
                self._out_of_order.discard(self.expected)
                self.expected += 1
        elif seq > self.expected:
            if seq in self._out_of_order:
                self.duplicates_received += 1
            self._out_of_order.add(seq)
        else:
            self.duplicates_received += 1

        self._send_ack(ece=packet.ce_marked)

        if not self.completed and self.expected >= self.total_segments:
            self.completed = True
            self.completion_time = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self)
            # Stay registered: late retransmits still deserve ACKs so the
            # sender can terminate cleanly; the host drops packets for flows
            # only after the sender unregisters its side.

        # The sink is the data packet's terminal consumer: recycle it.
        release_packet(packet)

    def _send_ack(self, ece: bool) -> None:
        ack = acquire_packet(
            flow_id=self.flow_id,
            src=self.host.name,
            dst=self.src,
            seq=self.expected,
            size=ACK_SIZE,
            is_ack=True,
            ecn=Ecn.NOT_ECT,
            ece=ece,
            service=self.service,
        )
        self.host.transmit(ack)
