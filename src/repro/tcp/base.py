"""TCP sender base: reliability, loss recovery, RTO, and window bookkeeping.

:class:`TcpSender` implements the transport mechanics shared by the two
congestion-control variants (DCTCP in :mod:`repro.tcp.dctcp`, ECN-enabled
NewReno in :mod:`repro.tcp.reno`):

* segment-granularity sliding window (cwnd counted in segments),
* slow start / congestion avoidance growth,
* fast retransmit on three duplicate ACKs with NewReno-style recovery,
* retransmission timeout with exponential backoff and go-back-N,
* RFC 6298 RTT estimation (Karn's rule: no samples from retransmits).

Subclasses customise ECN reaction through :meth:`_on_ecn_signal` (called once
per ACK carrying state) and :meth:`_on_window_boundary`.

The datacenter-specific defaults follow the paper's environment: initial
window 10 segments, min RTO 2 ms (so that, as in Section 5.2, a single
timeout visibly adds > 1 ms to a short flow's FCT).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from ..sim.engine import Simulator, Timer
from ..sim.network import Host
from ..sim.packet import Ecn, Packet, acquire_packet, release_packet
from ..sim.units import HEADER_SIZE, MSS, ms
from ..telemetry.runtime import dataplane_telemetry

__all__ = ["TcpSender", "SenderStats"]


class SenderStats:
    """Counters a sender accumulates over its lifetime."""

    __slots__ = (
        "segments_sent",
        "retransmissions",
        "timeouts",
        "fast_retransmits",
        "ecn_signals",
        "acks_received",
        "ece_acks",
    )

    def __init__(self) -> None:
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.ecn_signals = 0
        self.acks_received = 0
        self.ece_acks = 0


class TcpSender:
    """Reliable sender for one finite-size flow.

    Args:
        sim: simulator.
        host: the host this sender runs on (registered by flow id).
        flow_id: unique flow identifier.
        dst: destination host name.
        size_bytes: application bytes to deliver.
        mss: maximum segment payload.
        init_cwnd: initial congestion window in segments.
        min_rto: lower bound on the retransmission timeout.
        service: traffic class carried by every packet of the flow.
        on_complete: callback fired once when all data has been
            cumulatively acknowledged.
    """

    # Congestion-avoidance bound; effectively unlimited for datacenter flows.
    MAX_CWND_SEGMENTS = 4096.0

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        dst: str,
        size_bytes: int,
        mss: int = MSS,
        init_cwnd: float = 10.0,
        min_rto: float = ms(2),
        max_rto: float = 1.0,
        service: int = 0,
        on_complete: Optional[Callable[["TcpSender"], None]] = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError("flow size must be positive")
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.src = host.name
        self.dst = dst
        self.size_bytes = size_bytes
        self.mss = mss
        self.service = service
        self.on_complete = on_complete

        self.total_segments = max(1, math.ceil(size_bytes / mss))
        self._last_segment_payload = size_bytes - (self.total_segments - 1) * mss

        # Congestion state.
        self.cwnd: float = float(init_cwnd)
        self.ssthresh: float = self.MAX_CWND_SEGMENTS
        self.highest_acked = 0  # cumulative: segments fully acknowledged
        self.send_next = 0  # next new segment index to transmit
        self._dup_acks = 0
        self._in_recovery = False
        self._recovery_point = 0

        # RTO state (RFC 6298).
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self.rto = max(min_rto, ms(10))
        self._rto_timer = Timer(sim, self._on_rto)
        self._send_times: Dict[int, float] = {}
        self._retransmitted_segments: set = set()

        self.stats = SenderStats()
        self.telemetry = dataplane_telemetry()
        self.started = False
        self.completed = False
        self.start_time: float = -1.0
        self.completion_time: float = -1.0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin transmitting (registers nothing; host wiring is external)."""
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        self.start_time = self.sim.now
        self._try_send()

    @property
    def outstanding(self) -> int:
        """Segments in flight (sent but not cumulatively acknowledged)."""
        return self.send_next - self.highest_acked

    @property
    def flow_completion_time(self) -> float:
        """Sender-side FCT (start to full acknowledgement)."""
        if not self.completed:
            raise RuntimeError("flow not complete")
        return self.completion_time - self.start_time

    # ------------------------------------------------------------- sending

    def _segment_payload(self, seq: int) -> int:
        if seq == self.total_segments - 1:
            return self._last_segment_payload
        return self.mss

    def _make_segment(self, seq: int, retransmission: bool) -> Packet:
        packet = acquire_packet(
            flow_id=self.flow_id,
            src=self.src,
            dst=self.dst,
            seq=seq,
            size=self._segment_payload(seq) + HEADER_SIZE,
            is_ack=False,
            ecn=Ecn.ECT0,
            service=self.service,
        )
        packet.sent_time = self.sim.now
        packet.retransmission = retransmission
        return packet

    def _try_send(self) -> None:
        window = max(1, int(self.cwnd))
        sent_any = False
        while (
            not self.completed
            and self.send_next < self.total_segments
            and self.outstanding < window
        ):
            seq = self.send_next
            retransmission = seq in self._retransmitted_segments
            packet = self._make_segment(seq, retransmission)
            if seq not in self._send_times:
                self._send_times[seq] = self.sim.now
            self.host.transmit(packet)
            self.stats.segments_sent += 1
            if retransmission:
                self.stats.retransmissions += 1
                if self.telemetry is not None:
                    self.telemetry.on_retransmit(self, seq, "go-back-n")
            self.send_next += 1
            sent_any = True
        if sent_any and not self._rto_timer.armed and self.outstanding > 0:
            self._rto_timer.restart(self.rto)

    def _retransmit(self, seq: int, kind: str = "fast") -> None:
        self._retransmitted_segments.add(seq)
        self._send_times.pop(seq, None)  # Karn: never RTT-sample a retransmit
        packet = self._make_segment(seq, retransmission=True)
        self.host.transmit(packet)
        self.stats.segments_sent += 1
        self.stats.retransmissions += 1
        if self.telemetry is not None:
            self.telemetry.on_retransmit(self, seq, kind)

    # ----------------------------------------------------------- receiving

    def receive(self, packet: Packet) -> None:
        if not packet.is_ack:
            return
        if self.completed:
            release_packet(packet)  # ACK for an already-finished flow
            return
        self.stats.acks_received += 1
        if packet.ece:
            self.stats.ece_acks += 1
        ack = packet.seq

        # ECN reaction runs on every ACK so subclasses see all echo state,
        # including on duplicates (DCTCP counts marked bytes per window).
        newly_acked = max(0, ack - self.highest_acked)
        self._on_ecn_signal(packet, newly_acked)

        if ack > self.highest_acked:
            self._handle_new_ack(ack, newly_acked)
        elif ack == self.highest_acked and self.send_next > ack:
            self._handle_dup_ack()
        self._try_send()
        # The sender is the ACK's terminal consumer: recycle it.
        release_packet(packet)

    def _handle_new_ack(self, ack: int, newly_acked: int) -> None:
        self._sample_rtt(ack)
        self.highest_acked = ack
        self._dup_acks = 0

        if self._in_recovery:
            if ack >= self._recovery_point:
                self._in_recovery = False
                self.cwnd = self.ssthresh
            else:
                # NewReno partial ACK: the next hole was lost too.
                self._retransmit(ack, kind="partial-ack")
        else:
            self._grow_window(newly_acked)

        self._on_window_boundary()

        if self.highest_acked >= self.total_segments:
            self._complete()
            return
        if self.outstanding > 0:
            self._rto_timer.restart(self.rto)
        else:
            self._rto_timer.cancel()

    def _handle_dup_ack(self) -> None:
        self._dup_acks += 1
        if self._dup_acks == 3 and not self._in_recovery:
            self.stats.fast_retransmits += 1
            self._enter_recovery()
            self._retransmit(self.highest_acked)

    def _enter_recovery(self) -> None:
        self._in_recovery = True
        self._recovery_point = self.send_next
        old_cwnd = self.cwnd
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        if self.telemetry is not None:
            self.telemetry.on_cwnd(self, old_cwnd, self.cwnd, "fast-recovery")

    def _grow_window(self, newly_acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + newly_acked, self.MAX_CWND_SEGMENTS)
        else:
            self.cwnd = min(
                self.cwnd + newly_acked / max(self.cwnd, 1.0),
                self.MAX_CWND_SEGMENTS,
            )

    # ------------------------------------------------------------ ECN hooks

    def _on_ecn_signal(self, ack: Packet, newly_acked: int) -> None:
        """Subclass hook: react to the ACK's ECN-Echo state."""

    def _on_window_boundary(self) -> None:
        """Subclass hook: called after cumulative progress (DCTCP's
        once-per-window alpha update lives here)."""

    def _halve_window(self) -> None:
        """Classic multiplicative decrease used by the Reno variant."""
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh

    # ------------------------------------------------------------- RTO path

    def _sample_rtt(self, ack: int) -> None:
        # Sample from the highest segment this ACK newly covers that has a
        # recorded (non-retransmitted) send time.
        sample: Optional[float] = None
        for seq in range(self.highest_acked, ack):
            sent = self._send_times.pop(seq, None)
            if sent is not None and seq not in self._retransmitted_segments:
                sample = self.sim.now - sent
        if sample is None:
            return
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self.rto = min(
            self.max_rto, max(self.min_rto, self._srtt + 4.0 * self._rttvar)
        )

    @property
    def smoothed_rtt(self) -> Optional[float]:
        """Most recent smoothed RTT estimate, if any ACK sampled one."""
        return self._srtt

    def _on_rto(self) -> None:
        if self.completed:
            return
        self.stats.timeouts += 1
        if self.telemetry is not None:
            self.telemetry.on_timer(self, self.rto)
            self.telemetry.on_cwnd(self, self.cwnd, 1.0, "rto")
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self._dup_acks = 0
        self._in_recovery = False
        # Go-back-N: rewind and mark the head segment for retransmission.
        for seq in range(self.highest_acked, self.send_next):
            self._retransmitted_segments.add(seq)
            self._send_times.pop(seq, None)
        self.send_next = self.highest_acked
        self.rto = min(self.rto * 2.0, self.max_rto)
        self._rto_timer.restart(self.rto)
        self._try_send()

    # ------------------------------------------------------------ completion

    def _complete(self) -> None:
        self.completed = True
        self.completion_time = self.sim.now
        self._rto_timer.cancel()
        self.host.unregister_endpoint(self.flow_id)
        if self.telemetry is not None:
            self.telemetry.on_flow_complete(
                self, self.completion_time - self.start_time
            )
        if self.on_complete is not None:
            self.on_complete(self)
