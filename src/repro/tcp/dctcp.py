"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

DCTCP estimates the fraction of ECN-marked bytes per window with an EWMA::

    alpha <- (1 - g) * alpha + g * F        (g = 1/16)

and, once per window in which any mark was seen, cuts the congestion window
proportionally::

    cwnd <- cwnd * (1 - alpha / 2)

which yields the small effective lambda (~0.17) in Equation 1 and hence the
low marking thresholds DCTCP can operate with.

Loss recovery, slow start, RTO and fast retransmit are inherited unchanged
from :class:`repro.tcp.base.TcpSender` (DCTCP only alters the ECN reaction).
"""

from __future__ import annotations

from ..sim.packet import Packet
from .base import TcpSender

__all__ = ["DctcpSender", "DCTCP_G"]

DCTCP_G = 1.0 / 16.0
"""EWMA gain recommended by the DCTCP paper."""


class DctcpSender(TcpSender):
    """TCP sender with DCTCP's fractional window reduction."""

    def __init__(self, *args, g: float = DCTCP_G, init_alpha: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 < g <= 1.0:
            raise ValueError("g must be in (0, 1]")
        if not 0.0 <= init_alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.g = g
        self.alpha = init_alpha
        self._window_end = 0  # cumulative ack level that closes this window
        self._acked_bytes = 0
        self._marked_bytes = 0
        self._cwr_point = -1  # ack level that ends the current reduction epoch

    # ------------------------------------------------------------ ECN hooks

    def _on_ecn_signal(self, ack: Packet, newly_acked: int) -> None:
        if newly_acked <= 0:
            # Duplicate ACKs still echo marks, but byte attribution is
            # ambiguous; DCTCP implementations count only new data.
            return
        acked_bytes = newly_acked * self.mss
        self._acked_bytes += acked_bytes
        if not ack.ece:
            return
        self._marked_bytes += acked_bytes
        self.stats.ecn_signals += 1
        # Linux behaviour: the first ECE of a window enters CWR immediately
        # (tcp_enter_cwr), cutting cwnd by the *current* alpha -- it does not
        # wait for the window boundary.  This bounds slow-start overshoot to
        # roughly one RTT of growth past the marking threshold.
        if self.highest_acked + newly_acked > self._cwr_point:
            reduced = max(self.cwnd * (1.0 - self.alpha / 2.0), 1.0)
            if self.telemetry is not None:
                self.telemetry.on_cwnd(self, self.cwnd, reduced, "dctcp-cwr")
            self.ssthresh = max(reduced, 2.0)
            self.cwnd = reduced
            self._cwr_point = self.send_next

    def _on_window_boundary(self) -> None:
        # Alpha is refreshed once per window of data from the marked-byte
        # fraction observed over that window (the cut itself happened on the
        # window's first ECE, above).
        if self.highest_acked < self._window_end:
            return
        if self._acked_bytes > 0:
            fraction = self._marked_bytes / self._acked_bytes
            self.alpha = (1.0 - self.g) * self.alpha + self.g * fraction
        self._acked_bytes = 0
        self._marked_bytes = 0
        self._window_end = self.send_next
