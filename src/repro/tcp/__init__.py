"""ECN-aware transports: DCTCP and regular ECN TCP (NewReno)."""

from .base import SenderStats, TcpSender
from .dcqcn import DcqcnParams, DcqcnSender
from .dctcp import DCTCP_G, DctcpSender
from .factory import CC_VARIANTS, FlowHandle, open_dcqcn_flow, open_flow
from .reno import RenoSender
from .sink import TcpSink

__all__ = [
    "SenderStats",
    "TcpSender",
    "DcqcnParams",
    "DcqcnSender",
    "open_dcqcn_flow",
    "DCTCP_G",
    "DctcpSender",
    "CC_VARIANTS",
    "FlowHandle",
    "open_flow",
    "RenoSender",
    "TcpSink",
]
