"""RTT-variation emulation: processing-delay components and netem stand-in."""

from .components import (
    HIGH_LOAD,
    HYPERVISOR,
    NETWORK_STACK,
    SLB,
    TABLE1_CASES,
    DelayComponent,
    sample_case_rtts,
)
from .delay import FlowDelayStage, install_delay_stage
from .profiles import CLUSTER_SHAPES, RttProfile, RttStatistics

__all__ = [
    "HIGH_LOAD",
    "HYPERVISOR",
    "NETWORK_STACK",
    "SLB",
    "TABLE1_CASES",
    "DelayComponent",
    "sample_case_rtts",
    "FlowDelayStage",
    "install_delay_stage",
    "CLUSTER_SHAPES",
    "RttProfile",
    "RttStatistics",
]
