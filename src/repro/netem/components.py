"""Processing-delay components (Section 2.2 / Table 1).

The paper measures base-RTT inflation from four processing components:
network stack, software load balancer (SLB), hypervisor, and CPU load.  Each
is modelled as a lognormal delay whose mean/std are calibrated so that the
five Table 1 *combinations* reproduce the published statistics:

    case 1  stack                       mean 39.3 us   std 12.2 us
    case 2  stack + SLB                 mean 63.9 us   std 18.3 us
    case 3  stack + hypervisor          mean 69.3 us   std 18.8 us
    case 4  stack + SLB + hypervisor    mean 99.2 us   std 23.0 us
    case 5  case 4 under high load      mean 105.5 us  std 23.6 us

Component deltas are inferred by subtraction (independent-component
assumption, variances add): SLB ~24.6 us, hypervisor ~30.0 us, load ~6.3 us.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..sim.units import us

__all__ = [
    "DelayComponent",
    "NETWORK_STACK",
    "SLB",
    "HYPERVISOR",
    "HIGH_LOAD",
    "TABLE1_CASES",
    "sample_case_rtts",
]


def _lognormal_params(mean: float, std: float) -> Tuple[float, float]:
    """(mu, sigma) of a lognormal with the given mean and std."""
    if mean <= 0 or std <= 0:
        raise ValueError("mean and std must be positive")
    sigma_sq = math.log(1.0 + (std / mean) ** 2)
    mu = math.log(mean) - sigma_sq / 2.0
    return mu, math.sqrt(sigma_sq)


@dataclass(frozen=True)
class DelayComponent:
    """One processing component contributing lognormal delay to the RTT.

    Attributes:
        name: human-readable label.
        mean: mean added round-trip delay in seconds.
        std: standard deviation of the added delay in seconds.
    """

    name: str
    mean: float
    std: float

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` delays (seconds)."""
        mu, sigma = _lognormal_params(self.mean, self.std)
        return rng.lognormal(mean=mu, sigma=sigma, size=size)


# Calibrated component library (seconds).  The stack is measured directly;
# the others are deltas inferred from Table 1 under independence.
NETWORK_STACK = DelayComponent("network-stack", us(39.3), us(12.2))
SLB = DelayComponent("slb", us(24.6), us(math.sqrt(18.3**2 - 12.2**2)))
HYPERVISOR = DelayComponent("hypervisor", us(30.0), us(math.sqrt(18.8**2 - 12.2**2)))
HIGH_LOAD = DelayComponent("high-load", us(6.3), us(math.sqrt(23.6**2 - 23.0**2)))

TABLE1_CASES: Dict[str, List[DelayComponent]] = {
    "Networking Stack": [NETWORK_STACK],
    "Networking Stack + SLB": [NETWORK_STACK, SLB],
    "Networking Stack + Hypervisor": [NETWORK_STACK, HYPERVISOR],
    "Networking Stack + SLB + Hypervisor": [NETWORK_STACK, SLB, HYPERVISOR],
    "Networking Stack(high load) + SLB + Hypervisor": [
        NETWORK_STACK,
        SLB,
        HYPERVISOR,
        HIGH_LOAD,
    ],
}
"""The five processing-component combinations of Table 1, in paper order."""


def sample_case_rtts(
    components: Sequence[DelayComponent],
    rng: np.random.Generator,
    n_samples: int = 3000,
    wire_rtt: float = 0.0,
) -> np.ndarray:
    """Sample base RTTs for a combination of components.

    The paper collects ~3000 srtt samples per case on an uncongested path, so
    RTT = wire RTT (negligible at 100 Gbps over a single switch) + the sum of
    the per-component processing delays.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    total = np.full(n_samples, wire_rtt, dtype=float)
    for component in components:
        total += component.sample(rng, n_samples)
    return total
