"""Per-flow base-RTT profiles with n-times variation (Section 2.3, 5.2, 5.3).

The evaluation emulates RTT variation by giving each flow a base RTT drawn
from a long-tailed distribution spanning ``[rtt_min, rtt_min * variation]``
("the RTTs generated are based on the distribution in Figure 1, which is a
long-tail distribution").

Figure 1's distribution is a *mixture*: flows traverse different component
combinations (stack only / +SLB / +hypervisor / both), each adding a roughly
lognormal delay.  :class:`RttProfile` reproduces that: a weighted mixture of
lognormal clusters positioned across the span, truncated to the range.  With
the default clustering, a 3x 80-240 us profile yields an average of ~135 us
and a 90th percentile of ~220 us, matching the leaf-spine setup quoted in
Section 5.3 (average ~137 us, 90th percentile ~220 us).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

__all__ = ["RttProfile", "RttStatistics", "CLUSTER_SHAPES"]

# Relative cluster positions/weights emulating Figure 1's component mixture:
# (fraction of the span above rtt_min, mixture weight, relative std).
#
# Two calibrations are provided because the paper's two setups quote
# different distribution statistics for the same min/max band:
#
# * "fabric" matches Section 5.3's leaf-spine quote (80-240 us band with
#   average ~137 us and 90th percentile ~220 us);
# * "testbed" matches the Section 2.3/5.2 testbed configuration, where the
#   average-RTT threshold is 80 KB (~65-80 us worth of RTT in a 70-210 us
#   band) while the 90th-percentile threshold is 250 KB (~205 us): a far
#   more bottom-heavy mixture (most flows are intra-service).
_FABRIC_CLUSTERS: Tuple[Tuple[float, float, float], ...] = (
    (0.05, 0.40, 0.06),  # intra-service, stack only
    (0.40, 0.30, 0.06),  # one extra component (SLB or hypervisor)
    (0.85, 0.30, 0.06),  # several components / loaded path
)
_TESTBED_CLUSTERS: Tuple[Tuple[float, float, float], ...] = (
    (0.04, 0.72, 0.05),  # the bulk of flows: intra-service
    (0.35, 0.16, 0.05),  # one extra component
    (0.95, 0.12, 0.04),  # heavily processed tail
)
_DEFAULT_CLUSTERS = _FABRIC_CLUSTERS
CLUSTER_SHAPES = {"fabric": _FABRIC_CLUSTERS, "testbed": _TESTBED_CLUSTERS}


@dataclass(frozen=True)
class RttProfile:
    """A long-tailed per-flow base RTT distribution.

    Attributes:
        rtt_min: minimum base RTT in seconds.
        rtt_max: maximum base RTT in seconds.
        clusters: mixture components as ``(position, weight, std)`` with
            position/std relative to the span ``rtt_max - rtt_min``.
    """

    rtt_min: float
    rtt_max: float
    clusters: Tuple[Tuple[float, float, float], ...] = _DEFAULT_CLUSTERS

    def __post_init__(self) -> None:
        if self.rtt_min <= 0:
            raise ValueError("rtt_min must be positive")
        if self.rtt_max < self.rtt_min:
            raise ValueError("rtt_max must be >= rtt_min")
        if not self.clusters:
            raise ValueError("profile needs at least one cluster")
        weights = [w for _, w, _ in self.clusters]
        if any(w <= 0 for w in weights):
            raise ValueError("cluster weights must be positive")

    @classmethod
    def from_variation(
        cls, rtt_min: float, variation: float, shape: str = "fabric"
    ) -> "RttProfile":
        """Build a profile with ``rtt_max = rtt_min * variation``.

        ``variation`` is the paper's RTTmax/RTTmin ratio (2x-5x in the
        evaluation).  ``variation == 1`` yields a constant-RTT profile.
        ``shape`` selects the mixture calibration: ``"fabric"`` (Section
        5.3's leaf-spine statistics) or ``"testbed"`` (the bottom-heavy
        Section 2.3/5.2 testbed distribution).
        """
        if variation < 1.0:
            raise ValueError("variation must be >= 1")
        try:
            clusters = CLUSTER_SHAPES[shape]
        except KeyError:
            raise ValueError(
                f"unknown profile shape {shape!r}; choose from {sorted(CLUSTER_SHAPES)}"
            ) from None
        return cls(rtt_min=rtt_min, rtt_max=rtt_min * variation, clusters=clusters)

    @property
    def variation(self) -> float:
        """RTTmax / RTTmin."""
        return self.rtt_max / self.rtt_min

    @property
    def span(self) -> float:
        return self.rtt_max - self.rtt_min

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` base RTTs (seconds), clipped to [rtt_min, rtt_max]."""
        if size <= 0:
            raise ValueError("size must be positive")
        span = self.span
        if span == 0.0:
            return np.full(size, self.rtt_min)
        positions = np.array([c[0] for c in self.clusters])
        weights = np.array([c[1] for c in self.clusters], dtype=float)
        weights /= weights.sum()
        stds = np.array([c[2] for c in self.clusters])
        choice = rng.choice(len(self.clusters), size=size, p=weights)
        values = self.rtt_min + span * (
            positions[choice] + rng.standard_normal(size) * stds[choice]
        )
        return np.clip(values, self.rtt_min, self.rtt_max)

    def sample_one(self, rng: np.random.Generator) -> float:
        """Draw a single base RTT (seconds)."""
        return float(self.sample(rng, size=1)[0])

    # -------------------------------------------------------- statistics

    def percentile(self, q: float, rng: np.random.Generator, n: int = 200_000) -> float:
        """Monte-Carlo estimate of the q-th percentile of the profile."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        return float(np.percentile(self.sample(rng, n), q))

    def statistics(
        self, rng: np.random.Generator, n: int = 200_000
    ) -> "RttStatistics":
        """Mean / 90th / 99th percentile estimates for threshold derivation."""
        samples = self.sample(rng, n)
        return RttStatistics(
            mean=float(np.mean(samples)),
            p50=float(np.percentile(samples, 50)),
            p90=float(np.percentile(samples, 90)),
            p99=float(np.percentile(samples, 99)),
        )


@dataclass(frozen=True)
class RttStatistics:
    """Summary statistics of a base-RTT profile (seconds)."""

    mean: float
    p50: float
    p90: float
    p99: float
