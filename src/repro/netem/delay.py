"""netem-style sender-side delay stage.

The paper emulates RTT variation by running ``netem`` on the senders, adding
a fixed extra delay to every outgoing packet.  :class:`FlowDelayStage` is the
same mechanism: installed as a host's ``egress_delay_fn``, it holds every
packet of a registered flow for the flow's configured one-way extra delay
before it reaches the NIC queue.

The flow's emulated base RTT is then ``network_rtt + extra_delay`` (the delay
is applied on the data direction only; ACKs return undelayed, exactly as in
the paper's client-side netem setup where responses bypass the delayed
direction).
"""

from __future__ import annotations

from typing import Dict

from ..sim.network import Host
from ..sim.packet import Packet

__all__ = ["FlowDelayStage", "install_delay_stage"]


class FlowDelayStage:
    """Per-flow constant egress delay (the netem substitute)."""

    def __init__(self) -> None:
        self._delays: Dict[int, float] = {}

    def set_flow_delay(self, flow_id: int, delay: float) -> None:
        """Register the one-way extra delay for a flow's packets."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self._delays[flow_id] = delay

    def clear_flow(self, flow_id: int) -> None:
        """Forget a finished flow."""
        self._delays.pop(flow_id, None)

    def delay_for(self, packet: Packet) -> float:
        """The hold time for a packet (0 for unregistered flows)."""
        return self._delays.get(packet.flow_id, 0.0)

    __call__ = delay_for


def install_delay_stage(host: Host) -> FlowDelayStage:
    """Attach a fresh delay stage to ``host`` and return it.

    Reuses the existing stage if one is already installed, so multiple
    traffic generators can share a host.
    """
    existing = host.egress_delay_fn
    if isinstance(existing, FlowDelayStage):
        return existing
    if existing is not None:
        raise RuntimeError(
            f"host {host.name} already has a non-FlowDelayStage egress delay"
        )
    stage = FlowDelayStage()
    host.egress_delay_fn = stage
    return stage
