"""Single-switch star topologies: the testbed dumbbell and the incast rig.

The paper's testbed is 8 servers on one Tofino switch (7 senders, 1
receiver); the microscopic simulations use 16 senders and 1 receiver.  Both
are instances of :func:`build_star`: N senders and one receiver on a single
switch, with the AQM under test installed on the switch's egress ports (the
bottleneck is the switch-to-receiver port).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.base import Aqm
from ..netem.delay import FlowDelayStage, install_delay_stage
from ..sim.engine import Simulator
from ..sim.network import Host, Network, Switch
from ..sim.port import Port
from ..sim.scheduler import Scheduler
from ..sim.units import gbps, mb, us

__all__ = ["StarTopology", "build_star", "build_dumbbell", "build_incast", "HOST_QDISC_BYTES"]

HOST_QDISC_BYTES = mb(16)
"""Host uplink (NIC/qdisc) buffer: deep, like a Linux pfifo_fast/TSQ stack,
so slow-start overshoot queues at the sender instead of being dropped --
switch ports keep their shallow ``buffer_bytes``."""

AqmFactory = Callable[[], Aqm]
SchedulerFactory = Callable[[], Scheduler]


@dataclass
class StarTopology:
    """A built star: handles to everything an experiment needs."""

    network: Network
    switch: Switch
    senders: List[Host]
    receiver: Host
    bottleneck: Port  # switch -> receiver egress port
    sender_stages: Dict[str, FlowDelayStage] = field(default_factory=dict)

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    def stage_for(self, host: Host) -> FlowDelayStage:
        """The netem delay stage of a sender host."""
        return self.sender_stages[host.name]


def build_star(
    n_senders: int,
    link_rate_bps: float = gbps(10),
    link_delay: float = us(2),
    buffer_bytes: int = mb(1),
    aqm_factory: Optional[AqmFactory] = None,
    bottleneck_scheduler_factory: Optional[SchedulerFactory] = None,
    network: Optional[Network] = None,
) -> StarTopology:
    """Wire N senders and one receiver through a single switch.

    Args:
        n_senders: number of sending hosts.
        link_rate_bps: rate of every link (the receiver link is the
            bottleneck under many-to-one traffic).
        link_delay: per-link propagation delay; the uncongested network RTT
            is ~4 link delays plus serialization.
        buffer_bytes: per-port buffer at the switch.
        aqm_factory: builds a fresh AQM per switch egress port (the scheme
            under test).  ``None`` means drop-tail.
        bottleneck_scheduler_factory: optional multi-queue scheduler for the
            switch-to-receiver port (Figure 13's DWRR experiment).
        network: an existing network to build into (a fresh one by default).

    Returns:
        The built :class:`StarTopology` with routes installed.
    """
    if n_senders <= 0:
        raise ValueError("need at least one sender")
    net = network if network is not None else Network()
    switch = net.add_switch("sw0")
    senders: List[Host] = []
    stages: Dict[str, FlowDelayStage] = {}

    for index in range(n_senders):
        host = net.add_host(f"h{index}")
        net.connect(
            host,
            switch,
            rate_bps=link_rate_bps,
            propagation_delay=link_delay,
            buffer_bytes=buffer_bytes,
            buffer_bytes_a_to_b=HOST_QDISC_BYTES,
            aqm_b_to_a=aqm_factory() if aqm_factory is not None else None,
        )
        stages[host.name] = install_delay_stage(host)
        senders.append(host)

    receiver = net.add_host("recv")
    _, switch_to_recv = net.connect(
        receiver,
        switch,
        rate_bps=link_rate_bps,
        propagation_delay=link_delay,
        buffer_bytes=buffer_bytes,
        buffer_bytes_a_to_b=HOST_QDISC_BYTES,
        aqm_b_to_a=aqm_factory() if aqm_factory is not None else None,
        scheduler_b_to_a=(
            bottleneck_scheduler_factory()
            if bottleneck_scheduler_factory is not None
            else None
        ),
    )
    net.compute_routes()
    return StarTopology(
        network=net,
        switch=switch,
        senders=senders,
        receiver=receiver,
        bottleneck=switch_to_recv,
        sender_stages=stages,
    )


def build_dumbbell(**kwargs) -> StarTopology:
    """The paper's 8-server testbed: 7 senders, 1 receiver, 10 Gbps."""
    kwargs.setdefault("n_senders", 7)
    return build_star(**kwargs)


def build_incast(**kwargs) -> StarTopology:
    """The Section 5.4 microscopic rig: 16 senders, 1 receiver, 10 Gbps."""
    kwargs.setdefault("n_senders", 16)
    return build_star(**kwargs)
