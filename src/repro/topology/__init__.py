"""Topology builders: testbed star/dumbbell, incast rig, leaf-spine fabric."""

from .leafspine import LeafSpineTopology, build_leafspine
from .star import StarTopology, build_dumbbell, build_incast, build_star

__all__ = [
    "LeafSpineTopology",
    "build_leafspine",
    "StarTopology",
    "build_dumbbell",
    "build_incast",
    "build_star",
]
