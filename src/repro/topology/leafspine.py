"""Leaf-spine fabric with ECMP (Section 5.3's large-scale topology).

The paper simulates 8 spines x 8 leaves x 16 hosts/leaf = 128 hosts, all
links 10 Gbps.  :func:`build_leafspine` builds the same shape at any scale;
the benchmark harness defaults to a reduced 4x4x4 = 16-host fabric (pure
Python is ~100x slower than ns-3) and documents the substitution in
EXPERIMENTS.md.

Every leaf-to-host, leaf-to-spine and spine-to-leaf egress port receives its
own AQM instance from the factory, mirroring a fleet-wide switch config.
Routing uses per-flow ECMP over the equal-cost spine paths, as installed by
``Network.compute_routes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.base import Aqm
from ..netem.delay import FlowDelayStage, install_delay_stage
from ..sim.engine import Simulator
from ..sim.network import Host, Network, Switch
from ..sim.port import Port
from ..sim.units import gbps, mb, us
from .star import HOST_QDISC_BYTES

__all__ = ["LeafSpineTopology", "build_leafspine"]

AqmFactory = Callable[[], Aqm]


@dataclass
class LeafSpineTopology:
    """A built leaf-spine fabric."""

    network: Network
    spines: List[Switch]
    leaves: List[Switch]
    hosts: List[Host]
    hosts_by_leaf: List[List[Host]]
    host_stages: Dict[str, FlowDelayStage] = field(default_factory=dict)

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    def stage_for(self, host: Host) -> FlowDelayStage:
        return self.host_stages[host.name]

    def leaf_of(self, host_index: int) -> int:
        """The leaf index a host (by global index) attaches to."""
        per_leaf = len(self.hosts_by_leaf[0])
        return host_index // per_leaf


def build_leafspine(
    n_spines: int = 8,
    n_leaves: int = 8,
    hosts_per_leaf: int = 16,
    link_rate_bps: float = gbps(10),
    host_link_delay: float = us(2),
    fabric_link_delay: float = us(2),
    buffer_bytes: int = mb(1),
    aqm_factory: Optional[AqmFactory] = None,
    network: Optional[Network] = None,
    oversubscription: float = 1.0,
) -> LeafSpineTopology:
    """Build an ``n_spines x n_leaves`` fabric with ``hosts_per_leaf`` hosts.

    Defaults match the paper's 8x8x16 = 128-host simulation; pass smaller
    values for tractable pure-Python runs.

    ``oversubscription`` is the rack's uplink contention ratio: leaf-spine
    links run at ``link_rate_bps / oversubscription`` while host links keep
    the full rate, so 2.0 models a 2:1 oversubscribed rack.  1.0 (the
    default) is the paper's non-blocking fabric and leaves every rate
    bit-for-bit unchanged.
    """
    if n_spines <= 0 or n_leaves <= 0 or hosts_per_leaf <= 0:
        raise ValueError("topology dimensions must be positive")
    if oversubscription < 1.0:
        raise ValueError(
            f"oversubscription must be >= 1 (got {oversubscription:g}); "
            "an undersubscribed fabric would make uplinks faster than hosts"
        )
    uplink_rate_bps = link_rate_bps / oversubscription
    net = network if network is not None else Network()

    def fresh_aqm() -> Optional[Aqm]:
        return aqm_factory() if aqm_factory is not None else None

    spines = [net.add_switch(f"spine{i}") for i in range(n_spines)]
    leaves = [net.add_switch(f"leaf{i}") for i in range(n_leaves)]

    hosts: List[Host] = []
    hosts_by_leaf: List[List[Host]] = []
    stages: Dict[str, FlowDelayStage] = {}
    for leaf_index, leaf in enumerate(leaves):
        rack: List[Host] = []
        for host_index in range(hosts_per_leaf):
            host = net.add_host(f"h{leaf_index}-{host_index}")
            net.connect(
                host,
                leaf,
                rate_bps=link_rate_bps,
                propagation_delay=host_link_delay,
                buffer_bytes=buffer_bytes,
                buffer_bytes_a_to_b=HOST_QDISC_BYTES,
                aqm_b_to_a=fresh_aqm(),  # leaf -> host (last hop, hot port)
            )
            stages[host.name] = install_delay_stage(host)
            rack.append(host)
            hosts.append(host)
        hosts_by_leaf.append(rack)

    for leaf in leaves:
        for spine in spines:
            net.connect(
                leaf,
                spine,
                rate_bps=uplink_rate_bps,
                propagation_delay=fabric_link_delay,
                buffer_bytes=buffer_bytes,
                aqm_a_to_b=fresh_aqm(),  # leaf -> spine uplink
                aqm_b_to_a=fresh_aqm(),  # spine -> leaf downlink
            )

    net.compute_routes()
    return LeafSpineTopology(
        network=net,
        spines=spines,
        leaves=leaves,
        hosts=hosts,
        hosts_by_leaf=hosts_by_leaf,
        host_stages=stages,
    )
