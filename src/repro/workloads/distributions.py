"""Empirical flow-size distributions (Figure 5).

Flow sizes are sampled from piecewise-linear empirical CDFs -- the same
format (and the same published curves) as the traffic generator used by the
paper's testbed experiments [HKUST-SING/TrafficGenerator].  The two
production workloads, web search [DCTCP, SIGCOMM'10] and data mining
[VL2, SIGCOMM'09], are both heavy-tailed: most flows are small while most
bytes live in multi-megabyte flows.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["EmpiricalCdf"]


@dataclass(frozen=True)
class EmpiricalCdf:
    """A piecewise-linear CDF over flow sizes in bytes.

    Args:
        points: ``(size_bytes, cumulative_probability)`` pairs, sizes
            strictly increasing, probabilities non-decreasing from ~0 to 1.
        name: label used in reports.
    """

    points: Tuple[Tuple[float, float], ...]
    name: str = "empirical"

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("CDF needs at least two points")
        sizes = [p[0] for p in self.points]
        probs = [p[1] for p in self.points]
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ValueError("CDF sizes must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("CDF probabilities must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1")
        if probs[0] < 0:
            raise ValueError("CDF probabilities must be non-negative")

    # -------------------------------------------------------------- sampling

    def quantile(self, u: float) -> float:
        """Inverse CDF by linear interpolation (u in [0, 1])."""
        if not 0.0 <= u <= 1.0:
            raise ValueError("u must be within [0, 1]")
        probs = [p[1] for p in self.points]
        index = bisect.bisect_left(probs, u)
        if index == 0:
            return self.points[0][0]
        if index >= len(self.points):
            return self.points[-1][0]
        (x0, p0), (x1, p1) = self.points[index - 1], self.points[index]
        if p1 == p0:
            return x1
        fraction = (u - p0) / (p1 - p0)
        return x0 + fraction * (x1 - x0)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` flow sizes in bytes (always >= 1 byte)."""
        uniforms = rng.random(size)
        values = np.array([self.quantile(u) for u in uniforms])
        return np.maximum(values, 1.0)

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single flow size in bytes."""
        return max(1, int(round(self.quantile(rng.random()))))

    # ------------------------------------------------------------ statistics

    def mean(self) -> float:
        """Analytic mean of the piecewise-linear distribution (bytes)."""
        total = self.points[0][0] * self.points[0][1]  # mass at the first point
        for (x0, p0), (x1, p1) in zip(self.points, self.points[1:]):
            total += (p1 - p0) * (x0 + x1) / 2.0
        return total

    def cdf_at(self, size_bytes: float) -> float:
        """Cumulative probability at a given size (for plotting Figure 5)."""
        sizes = [p[0] for p in self.points]
        if size_bytes <= sizes[0]:
            return self.points[0][1] if size_bytes >= sizes[0] else 0.0
        if size_bytes >= sizes[-1]:
            return 1.0
        index = bisect.bisect_right(sizes, size_bytes)
        (x0, p0), (x1, p1) = self.points[index - 1], self.points[index]
        return p0 + (p1 - p0) * (size_bytes - x0) / (x1 - x0)

    def curve(self, n_points: int = 200) -> Tuple[List[float], List[float]]:
        """(sizes, cdf values) on a log grid, for Figure 5 reproduction."""
        lo, hi = self.points[0][0], self.points[-1][0]
        grid = np.logspace(np.log10(max(lo, 1.0)), np.log10(hi), n_points)
        return list(grid), [self.cdf_at(x) for x in grid]
