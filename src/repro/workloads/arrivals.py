"""Poisson flow arrivals at a target load (Section 5.1 methodology).

Flows arrive according to a Poisson process whose rate is chosen so the
average offered load on the reference capacity hits the requested fraction::

    arrival_rate = load * capacity / (8 * mean_flow_size)

Each arriving flow picks endpoints through a pluggable pair picker (fixed
receiver for the testbed star, uniform random pairs for leaf-spine), samples
a flow size from the workload CDF and, when an RTT profile is configured, a
base RTT whose delta over the physical network RTT is installed as a
netem-style sender-side delay -- the paper's RTT-variation emulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..netem.delay import FlowDelayStage
from ..netem.profiles import RttProfile
from ..sim.network import Host, Network
from ..sim.packet import PacketFactory
from ..sim.units import MSS, ms
from ..tcp.factory import FlowHandle, open_flow
from .distributions import EmpiricalCdf

__all__ = ["TransportConfig", "PoissonTrafficGenerator", "star_pair_picker", "any_to_any_pair_picker"]

PairPicker = Callable[[np.random.Generator], Tuple[Host, Host]]


@dataclass(frozen=True)
class TransportConfig:
    """Transport parameters shared by all generated flows."""

    cc: str = "dctcp"
    mss: int = MSS
    init_cwnd: float = 10.0
    min_rto: float = ms(2)


def star_pair_picker(senders: List[Host], receiver: Host) -> PairPicker:
    """Uniform random sender, fixed receiver (the testbed pattern)."""
    if not senders:
        raise ValueError("need at least one sender")

    def pick(rng: np.random.Generator) -> Tuple[Host, Host]:
        return senders[int(rng.integers(len(senders)))], receiver

    return pick


def any_to_any_pair_picker(hosts: List[Host]) -> PairPicker:
    """Uniform random distinct (src, dst) pairs (the leaf-spine pattern)."""
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")

    def pick(rng: np.random.Generator) -> Tuple[Host, Host]:
        src_index = int(rng.integers(len(hosts)))
        dst_index = int(rng.integers(len(hosts) - 1))
        if dst_index >= src_index:
            dst_index += 1
        return hosts[src_index], hosts[dst_index]

    return pick


class PoissonTrafficGenerator:
    """Generates flows with Poisson arrivals until a flow budget is spent.

    Args:
        network: the wired network.
        factory: shared flow-id allocator.
        pair_picker: returns (src, dst) hosts per arrival.
        workload: flow-size CDF.
        load: offered load fraction in (0, 1] of ``capacity_bps``.
        capacity_bps: reference capacity the load is defined against
            (bottleneck link for a star; aggregate host capacity for
            any-to-any traffic).
        n_flows: number of flows to launch.
        rng: numpy random generator (owned by the experiment; seeds flow
            sizes, arrivals, endpoint choice and RTTs).
        rtt_profile: optional per-flow base-RTT profile.
        network_rtt: physical network RTT subtracted from sampled base RTTs
            to compute the sender-side netem delay.
        delay_stage_of: maps a sender host to its delay stage (topologies
            provide this); required when ``rtt_profile`` is set.
        transport: transport configuration.
        on_flow_complete: callback per completed flow (FCT recording).
        service: traffic class for all generated flows.
    """

    def __init__(
        self,
        network: Network,
        factory: PacketFactory,
        pair_picker: PairPicker,
        workload: EmpiricalCdf,
        load: float,
        capacity_bps: float,
        n_flows: int,
        rng: np.random.Generator,
        rtt_profile: Optional[RttProfile] = None,
        network_rtt: float = 0.0,
        delay_stage_of: Optional[Callable[[Host], FlowDelayStage]] = None,
        transport: TransportConfig = TransportConfig(),
        on_flow_complete: Optional[Callable[[FlowHandle], None]] = None,
        service: int = 0,
    ) -> None:
        if not 0.0 < load <= 1.0:
            raise ValueError("load must be in (0, 1]")
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if n_flows <= 0:
            raise ValueError("n_flows must be positive")
        if rtt_profile is not None and delay_stage_of is None:
            raise ValueError("rtt_profile requires delay_stage_of")
        self.network = network
        self.factory = factory
        self.pair_picker = pair_picker
        self.workload = workload
        self.load = load
        self.capacity_bps = capacity_bps
        self.n_flows = n_flows
        self.rng = rng
        self.rtt_profile = rtt_profile
        self.network_rtt = network_rtt
        self.delay_stage_of = delay_stage_of
        self.transport = transport
        self.on_flow_complete = on_flow_complete
        self.service = service

        mean_size = workload.mean()
        self.arrival_rate = load * capacity_bps / (8.0 * mean_size)
        self.flows: List[FlowHandle] = []
        self._launched = 0

    @property
    def mean_interarrival(self) -> float:
        """Average seconds between flow arrivals."""
        return 1.0 / self.arrival_rate

    def start(self, at: float = 0.0) -> None:
        """Schedule the first arrival."""
        first = at + float(self.rng.exponential(self.mean_interarrival))
        self.network.sim.schedule_at(first, self._arrival)

    # ----------------------------------------------------------- internals

    def _arrival(self) -> None:
        if self._launched >= self.n_flows:
            return
        self._launched += 1
        self._launch_flow()
        if self._launched < self.n_flows:
            gap = float(self.rng.exponential(self.mean_interarrival))
            self.network.sim.schedule(gap, self._arrival)

    def _launch_flow(self) -> None:
        src, dst = self.pair_picker(self.rng)
        size = self.workload.sample_one(self.rng)

        stage: Optional[FlowDelayStage] = None
        if self.rtt_profile is not None:
            assert self.delay_stage_of is not None
            stage = self.delay_stage_of(src)

        def complete(handle: FlowHandle) -> None:
            if stage is not None:
                stage.clear_flow(handle.flow_id)
            if self.on_flow_complete is not None:
                self.on_flow_complete(handle)

        handle = open_flow(
            self.network,
            self.factory,
            src,
            dst,
            size,
            cc=self.transport.cc,
            mss=self.transport.mss,
            init_cwnd=self.transport.init_cwnd,
            min_rto=self.transport.min_rto,
            service=self.service,
            on_complete=complete,
        )
        if stage is not None:
            assert self.rtt_profile is not None
            base_rtt = self.rtt_profile.sample_one(self.rng)
            extra = max(0.0, base_rtt - self.network_rtt)
            stage.set_flow_delay(handle.flow_id, extra)
        self.flows.append(handle)

    # ------------------------------------------------------------- status

    @property
    def launched(self) -> int:
        return self._launched

    @property
    def completed(self) -> int:
        return sum(1 for flow in self.flows if flow.completed)
