"""Incast query bursts (Section 5.4's microscopic experiments).

A query fans out to N workers that all answer the same aggregator at once:
at ``start_time``, every selected sender launches one flow (uniform 3-60 KB,
as in the paper) to the receiver.  The burst of N initial windows arriving
within one RTT is exactly the traffic that separates instantaneous markers
(DCTCP-RED, ECN#) from purely persistent ones (CoDel).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..sim.network import Host, Network
from ..sim.packet import PacketFactory
from ..tcp.factory import FlowHandle, open_flow
from .arrivals import TransportConfig

__all__ = ["launch_query", "QUERY_MIN_BYTES", "QUERY_MAX_BYTES"]

QUERY_MIN_BYTES = 3_000
QUERY_MAX_BYTES = 60_000


def launch_query(
    network: Network,
    factory: PacketFactory,
    senders: List[Host],
    receiver: Host,
    fanout: int,
    start_time: float,
    rng: np.random.Generator,
    transport: TransportConfig = TransportConfig(),
    on_flow_complete: Optional[Callable[[FlowHandle], None]] = None,
    min_bytes: int = QUERY_MIN_BYTES,
    max_bytes: int = QUERY_MAX_BYTES,
    service: int = 0,
    jitter: float = 0.0,
) -> List[FlowHandle]:
    """Start ``fanout`` concurrent query flows at ``start_time``.

    When ``fanout`` exceeds the number of physical senders the workers are
    spread round-robin across them (many worker processes per host), which
    preserves the aggregate burst the paper's fanout sweep creates.

    ``jitter`` adds a uniform [0, jitter) offset to each worker's response
    time, modelling the sub-RTT service-time spread real aggregation
    workers exhibit; with zero jitter the initial windows form one
    un-reactable impulse that hits every AQM identically.

    Returns the flow handles (completion is observable via the callback or
    the handles themselves).
    """
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    if not senders:
        raise ValueError("need at least one sender")
    if min_bytes <= 0 or max_bytes < min_bytes:
        raise ValueError("invalid query size range")

    if jitter < 0:
        raise ValueError("jitter cannot be negative")
    handles: List[FlowHandle] = []
    for worker in range(fanout):
        src = senders[worker % len(senders)]
        size = int(rng.integers(min_bytes, max_bytes + 1))
        offset = float(rng.uniform(0.0, jitter)) if jitter > 0 else 0.0
        handle = open_flow(
            network,
            factory,
            src,
            receiver,
            size,
            cc=transport.cc,
            mss=transport.mss,
            init_cwnd=transport.init_cwnd,
            min_rto=transport.min_rto,
            start_time=start_time + offset,
            service=service,
            on_complete=on_flow_complete,
        )
        handles.append(handle)
    return handles
