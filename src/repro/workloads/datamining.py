"""Data mining workload (VL2, SIGCOMM 2009).

The flow-size CDF below is the published data-mining curve as distributed
with the paper's own traffic generator (HKUST-SING/TrafficGenerator,
``VL2_CDF.txt``).  It is even heavier-tailed than web search: ~80% of flows
are below 350 KB, yet flows above 10 MB carry most of the bytes.
"""

from __future__ import annotations

from .distributions import EmpiricalCdf

__all__ = ["DATA_MINING"]

DATA_MINING = EmpiricalCdf(
    name="data-mining",
    points=(
        (100, 0.00),
        (180, 0.10),
        (250, 0.20),
        (560, 0.30),
        (900, 0.40),
        (1_100, 0.50),
        (60_000, 0.60),
        (90_000, 0.70),
        (350_000, 0.80),
        (4_000_000, 0.90),
        (10_000_000, 0.95),
        (30_000_000, 0.98),
        (100_000_000, 1.00),
    ),
)
"""VL2 data-mining flow-size distribution (bytes)."""
