"""Traffic generation: production flow-size CDFs, Poisson arrivals, incast."""

from .arrivals import (
    PoissonTrafficGenerator,
    TransportConfig,
    any_to_any_pair_picker,
    star_pair_picker,
)
from .datamining import DATA_MINING
from .distributions import EmpiricalCdf
from .incast import QUERY_MAX_BYTES, QUERY_MIN_BYTES, launch_query
from .websearch import WEB_SEARCH

__all__ = [
    "PoissonTrafficGenerator",
    "TransportConfig",
    "any_to_any_pair_picker",
    "star_pair_picker",
    "DATA_MINING",
    "EmpiricalCdf",
    "QUERY_MAX_BYTES",
    "QUERY_MIN_BYTES",
    "launch_query",
    "WEB_SEARCH",
]
