"""Web search workload (DCTCP, SIGCOMM 2010).

The flow-size CDF below is the published web-search curve as distributed
with the paper's own traffic generator (HKUST-SING/TrafficGenerator,
``DCTCP_CDF.txt``).  It is the burstier of the two evaluation workloads:
over half the flows are under 30 KB while ~30% of the bytes come from flows
larger than 1 MB.
"""

from __future__ import annotations

from .distributions import EmpiricalCdf

__all__ = ["WEB_SEARCH"]

WEB_SEARCH = EmpiricalCdf(
    name="web-search",
    points=(
        (1_000, 0.00),
        (2_000, 0.05),
        (3_000, 0.10),
        (5_000, 0.20),
        (7_000, 0.30),
        (10_000, 0.40),
        (15_000, 0.50),
        (30_000, 0.60),
        (70_000, 0.70),
        (150_000, 0.80),
        (600_000, 0.90),
        (1_500_000, 0.95),
        (3_500_000, 0.98),
        (10_000_000, 0.99),
        (30_000_000, 1.00),
    ),
)
"""DCTCP web-search flow-size distribution (bytes)."""
