"""TCN: instantaneous sojourn-time ECN marking (Bai et al., CoNEXT 2016).

TCN marks a packet at dequeue whenever its sojourn time exceeds a single
static threshold.  It adapts to packet schedulers (unlike queue-length RED)
but, as the paper shows in Section 5.4, a threshold derived from a
high-percentile RTT still leaves persistent queues for small-RTT flows --
ECN# inherits TCN's instantaneous marking and adds persistent-queue control.

With a single FIFO queue TCN is behaviourally identical to sojourn-time
DCTCP-RED; it is kept as a distinct class because the paper treats it as a
separate comparison scheme and because its threshold is configured
independently in the Figure 13 experiment (150 us).
"""

from __future__ import annotations

from ..sim.packet import Packet
from .base import Aqm

__all__ = ["Tcn"]


class Tcn(Aqm):
    """Instantaneous sojourn-time marking with a single threshold."""

    def __init__(self, threshold_seconds: float) -> None:
        super().__init__()
        if threshold_seconds <= 0:
            raise ValueError("TCN threshold must be positive")
        self.threshold_seconds = threshold_seconds

    def on_dequeue(self, packet: Packet, now: float) -> bool:
        self.stats.packets_seen += 1
        if packet.sojourn_time(now) > self.threshold_seconds:
            return self._congestion_signal(packet, kind="instant", now=now)
        return True
