"""ECN# -- the paper's contribution (Section 3).

ECN# marks a packet when EITHER of two conditions holds at dequeue:

1. **Instantaneous marking** (burst tolerance, throughput): the packet's
   sojourn time exceeds ``ins_target``, a cut-off threshold derived from a
   high-percentile base RTT via Equation 2 (``T = lambda * RTT``).

2. **Persistent marking** (queueing-delay elimination): Algorithm 1 of the
   paper -- if the sojourn time has stayed above ``pst_target`` for at least
   one ``pst_interval``, a persistent queue buildup is declared and ECN#
   conservatively marks one packet per (shrinking) interval:
   ``marking_next += pst_interval / sqrt(marking_count)``.

The persistent component removes the standing queue created by flows whose
base RTT is far below the high percentile used for ``ins_target``; the
instantaneous component keeps the burst tolerance CoDel lacks.

State variables follow Table 2 of the paper: ``first_above_time``,
``marking_state``, ``marking_count``, ``marking_next``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.packet import Packet
from .base import Aqm

__all__ = ["EcnSharp", "EcnSharpConfig"]


@dataclass(frozen=True)
class EcnSharpConfig:
    """Configuration parameters of ECN# (Table 2, top half).

    Attributes:
        ins_target: instantaneous sojourn-time marking threshold, derived
            from a high-percentile RTT (Equation 2).
        pst_target: persistent queueing target the sojourn time is compared
            against (rule of thumb: >= lambda * average RTT, Section 3.4).
        pst_interval: observation interval before persistent queueing is
            declared, and the base spacing of conservative marks (rule of
            thumb: around the high-percentile RTT).
    """

    ins_target: float
    pst_target: float
    pst_interval: float

    def __post_init__(self) -> None:
        if self.ins_target <= 0:
            raise ValueError("ins_target must be positive")
        if self.pst_target <= 0:
            raise ValueError("pst_target must be positive")
        if self.pst_interval <= 0:
            raise ValueError("pst_interval must be positive")
        if self.pst_target > self.ins_target:
            raise ValueError(
                "pst_target above ins_target would make persistent marking "
                "unreachable before instantaneous marking"
            )


class EcnSharp(Aqm):
    """ECN# AQM (Algorithm 1 + instantaneous cut-off marking)."""

    def __init__(self, config: EcnSharpConfig) -> None:
        super().__init__()
        self.config = config
        self.reset()

    @classmethod
    def from_targets(
        cls, ins_target: float, pst_target: float, pst_interval: float
    ) -> "EcnSharp":
        """Convenience constructor mirroring the paper's parameter list."""
        return cls(EcnSharpConfig(ins_target, pst_target, pst_interval))

    def reset(self) -> None:
        super().reset()
        # Variables of Table 2 (bottom half).  The paper's pseudocode uses
        # 0 as the "unset" sentinel for first_above_time (a register cannot
        # hold None); simulated time genuinely starts at 0, so the reference
        # implementation uses None instead.  The dataplane model keeps the
        # 0-sentinel, matching the hardware semantics.
        self._first_above_time = None
        self._marking_state = False
        self._marking_count = 0
        self._marking_next = 0.0

    # ------------------------------------------------------- Algorithm 1

    def _is_persistent_queue_buildup(self, packet: Packet, now: float) -> bool:
        """``IsPersistentQueueBuildups`` (Algorithm 1, lines 21-33)."""
        if packet.sojourn_time(now) < self.config.pst_target:
            self._first_above_time = None
            return False
        if self._first_above_time is None:
            self._first_above_time = now
            return False
        return now > self._first_above_time + self.config.pst_interval

    def _should_persistent_mark(self, packet: Packet, now: float) -> bool:
        """``ShouldPersistentMark`` (Algorithm 1, lines 1-20)."""
        detected = self._is_persistent_queue_buildup(packet, now)
        if self._marking_state:
            if not detected:
                self._marking_state = False
                return False
            if now > self._marking_next:
                self._marking_count += 1
                self._marking_next += (
                    self.config.pst_interval / math.sqrt(self._marking_count)
                )
                return True
            return False
        if detected:
            self._marking_state = True
            self._marking_count = 1
            self._marking_next = now + self.config.pst_interval
            return True
        return False

    # ------------------------------------------------------------ AQM hook

    def on_dequeue(self, packet: Packet, now: float) -> bool:
        self.stats.packets_seen += 1
        # Instantaneous marking: aggressive cut-off for burst tolerance.
        # The persistent state machine still observes every packet so that
        # first_above_time/marking_state track the queue continuously.
        persistent = self._should_persistent_mark(packet, now)
        if packet.sojourn_time(now) > self.config.ins_target:
            return self._congestion_signal(packet, kind="instant", now=now)
        if persistent:
            return self._congestion_signal(packet, kind="persistent", now=now)
        return True
