"""Threshold math: Equations 1-2 and the Section 3.4 rule of thumb.

The ideal instantaneous ECN marking threshold for a cut-off marker is

    K = lambda * C * RTT                                       (Equation 1)

in bytes, where ``lambda`` is transport-specific (1 for regular ECN TCP,
about 0.17 for DCTCP per the SIGMETRICS'11 analysis), ``C`` the bottleneck
capacity and ``RTT`` the base round-trip time.  The equivalent sojourn-time
threshold divides out the capacity:

    T = K / C = lambda * RTT                                   (Equation 2)

Operators pick the RTT percentile; the paper's "current practice" baseline
uses the 90th percentile (DCTCP-RED-Tail) and the contrast case uses the
average (DCTCP-RED-AVG).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "LAMBDA_ECN_TCP",
    "LAMBDA_DCTCP",
    "marking_threshold_bytes",
    "marking_threshold_seconds",
    "EcnSharpRuleOfThumb",
    "derive_ecn_sharp_params",
]

LAMBDA_ECN_TCP = 1.0
"""Regular ECN-enabled TCP halves cwnd on a mark: lambda = 1."""

LAMBDA_DCTCP = 0.17
"""DCTCP's proportional reaction yields lambda ~= 0.17 in theory [13]."""


def marking_threshold_bytes(lam: float, capacity_bps: float, rtt_seconds: float) -> int:
    """Equation 1: the queue-length threshold K in bytes."""
    if lam <= 0 or capacity_bps <= 0 or rtt_seconds <= 0:
        raise ValueError("lambda, capacity and RTT must all be positive")
    return int(lam * capacity_bps * rtt_seconds / 8.0)


def marking_threshold_seconds(lam: float, rtt_seconds: float) -> float:
    """Equation 2: the sojourn-time threshold T in seconds."""
    if lam <= 0 or rtt_seconds <= 0:
        raise ValueError("lambda and RTT must be positive")
    return lam * rtt_seconds


@dataclass(frozen=True)
class EcnSharpRuleOfThumb:
    """Derived ECN# parameters with the RTT statistics that produced them."""

    ins_target: float
    pst_target: float
    pst_interval: float
    rtt_avg: float
    rtt_high_percentile: float


def derive_ecn_sharp_params(
    rtt_samples: Sequence[float],
    lam: float = LAMBDA_ECN_TCP,
    high_percentile: float = 90.0,
    burst_scale: float = 1.0,
) -> EcnSharpRuleOfThumb:
    """Apply the Section 3.4 rule of thumb to a measured RTT distribution.

    * ``ins_target`` = lambda x high-percentile RTT (Equation 2 with a tail
      RTT, preserving throughput and burst headroom).
    * ``pst_interval`` ~ the high-percentile RTT (one worst-case RTT so TCP
      can react before marking escalates); ``burst_scale`` < 1 shrinks it for
      burstier traffic as Section 3.4 suggests.
    * ``pst_target`` >= lambda x average RTT (conservative enough to tolerate
      queue oscillation from NIC offloads while still removing standing
      queues).

    Args:
        rtt_samples: measured base RTTs in seconds (e.g. from
            ``repro.measurement``, the PingMesh stand-in).
        lam: the transport's lambda.
        high_percentile: percentile used for the tail RTT (default 90).
        burst_scale: multiplier on pst_interval for bursty environments.
    """
    if len(rtt_samples) == 0:
        raise ValueError("need at least one RTT sample")
    if not 0 < high_percentile <= 100:
        raise ValueError("percentile must be in (0, 100]")
    if burst_scale <= 0:
        raise ValueError("burst_scale must be positive")
    samples = np.asarray(rtt_samples, dtype=float)
    if np.any(samples <= 0):
        raise ValueError("RTT samples must be positive")
    rtt_avg = float(np.mean(samples))
    rtt_tail = float(np.percentile(samples, high_percentile))
    # Degenerate distributions (or float summation error on near-constant
    # ones) can leave the mean a hair above the chosen percentile; clamp so
    # the derived targets always form a valid EcnSharpConfig.
    rtt_avg = min(rtt_avg, rtt_tail)
    return EcnSharpRuleOfThumb(
        ins_target=marking_threshold_seconds(lam, rtt_tail),
        pst_target=marking_threshold_seconds(lam, rtt_avg),
        pst_interval=rtt_tail * burst_scale,
        rtt_avg=rtt_avg,
        rtt_high_percentile=rtt_tail,
    )
