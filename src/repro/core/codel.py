"""CoDel (Controlling Queue Delay) in its ECN-marking variant.

CoDel [Nichols & Jacobson, 2012] tracks whether the packet sojourn time has
stayed above ``target`` for a full ``interval`` to detect a *bad* (standing)
queue, then enters a dropping/marking state whose action times follow the
control law ``next = first + interval / sqrt(count)``.

The paper deploys CoDel on the Tofino as a pure ECN marker (no drops for ECT
traffic) and shows its weakness: with no instantaneous component it reacts
too slowly to incast bursts and overflows the buffer (Figures 10b, 11).

This implementation follows the reference pseudocode of the ACM Queue paper,
adapted to mark instead of drop for ECN-capable packets.
"""

from __future__ import annotations

import math

from ..sim.packet import Ecn, Packet
from .base import Aqm

__all__ = ["Codel"]


class Codel(Aqm):
    """CoDel AQM acting at dequeue on packet sojourn time.

    Args:
        target_seconds: acceptable standing queue delay (paper: 85 us testbed,
            10 us in the microscopic simulations).
        interval_seconds: sliding window over which the sojourn time must
            continuously exceed target before the marking state engages
            (paper: 200 us testbed, 240 us simulations -- about one worst-case
            RTT).
    """

    def __init__(self, target_seconds: float, interval_seconds: float) -> None:
        super().__init__()
        if target_seconds <= 0 or interval_seconds <= 0:
            raise ValueError("CoDel target and interval must be positive")
        self.target = target_seconds
        self.interval = interval_seconds
        self.reset()

    def reset(self) -> None:
        super().reset()
        self._first_above_time = 0.0
        self._marking = False
        self._mark_next = 0.0
        self._count = 0
        self._last_count = 0

    # -------------------------------------------------------------- helpers

    def _should_mark(self, packet: Packet, now: float) -> bool:
        """The ``dodeque`` state machine: is the queue persistently bad?"""
        sojourn = packet.sojourn_time(now)
        if sojourn < self.target:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def on_dequeue(self, packet: Packet, now: float) -> bool:
        self.stats.packets_seen += 1
        ok_to_mark = self._should_mark(packet, now)

        if self._marking:
            if not ok_to_mark:
                self._marking = False
                return True
            if now >= self._mark_next:
                survived = self._congestion_signal(packet, kind="persistent", now=now)
                self._count += 1
                self._mark_next += self.interval / math.sqrt(self._count)
                return survived
            return True

        if ok_to_mark:
            survived = self._congestion_signal(packet, kind="persistent", now=now)
            self._marking = True
            # Reference CoDel resumes with a higher count if we re-enter the
            # marking state shortly after leaving it, so persistent offenders
            # face geometrically increasing pressure.
            if self._count > 2 and now - self._mark_next < 8 * self.interval:
                self._count -= 2
            else:
                self._count = 1
            self._last_count = self._count
            self._mark_next = now + self.interval / math.sqrt(self._count)
            return survived

        return True
