"""AQM (active queue management) interface.

Every marking scheme in this reproduction -- ECN#, DCTCP-RED, CoDel, TCN --
implements :class:`Aqm`.  An egress port invokes the two hooks:

* ``on_enqueue`` when a packet is admitted to the port buffer.  Queue-length
  based schemes (classic DCTCP-RED) mark here; an AQM may also veto admission
  (return ``False``) to model AQM drops distinct from buffer overflow.
* ``on_dequeue`` when a packet is pulled for serialization.  Sojourn-time
  based schemes (ECN#, CoDel, TCN, sojourn-RED) mark here, because only at
  dequeue is the packet's time-in-queue known.

Marking a packet whose transport is not ECN-capable falls back to dropping,
per RFC 3168: helpers return whether the packet survived.
"""

from __future__ import annotations

from abc import ABC
from typing import Optional

from ..sim.packet import Ecn, Packet
from ..telemetry.runtime import dataplane_telemetry

__all__ = ["Aqm", "NullAqm", "MarkingStats"]


class MarkingStats:
    """Counters every AQM keeps, used by tests and experiment reports."""

    __slots__ = ("marks", "instant_marks", "persistent_marks", "aqm_drops", "packets_seen")

    def __init__(self) -> None:
        self.marks = 0
        self.instant_marks = 0
        self.persistent_marks = 0
        self.aqm_drops = 0
        self.packets_seen = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MarkingStats marks={self.marks} instant={self.instant_marks} "
            f"persistent={self.persistent_marks} drops={self.aqm_drops}>"
        )


class Aqm(ABC):
    """Base class for marking schemes attached to an egress port."""

    def __init__(self) -> None:
        self.stats = MarkingStats()
        self.telemetry = dataplane_telemetry()

    # ------------------------------------------------------------------ API

    def on_enqueue(self, packet: Packet, now: float, queue_bytes: int) -> bool:
        """Called on admission.  ``queue_bytes`` is the occupancy *before*
        this packet.  Return ``False`` to drop the packet (AQM drop)."""
        return True

    def on_dequeue(self, packet: Packet, now: float) -> bool:
        """Called when the packet leaves the queue for the wire.  Return
        ``False`` to drop the packet instead of transmitting it (CoDel's
        behaviour for not-ECT traffic)."""
        return True

    def reset(self) -> None:
        """Clear internal state between experiments (subclasses extend)."""
        self.stats = MarkingStats()

    # -------------------------------------------------------------- helpers

    def _congestion_signal(
        self, packet: Packet, kind: str = "instant", now: float = -1.0
    ) -> bool:
        """Apply a congestion signal: CE-mark if ECN-capable, else report
        that the packet should be dropped.  Returns True if the packet
        survives (was marked), False if it must be dropped.

        ``now`` timestamps the telemetry mark event; callers inside the
        enqueue/dequeue hooks pass the hook's clock.
        """
        self.stats.packets_seen += 0  # counted by callers; keep hook cheap
        if Ecn.is_ect(packet.ecn) or packet.ecn == Ecn.CE:
            packet.mark_ce()
            self.stats.marks += 1
            if kind == "instant":
                self.stats.instant_marks += 1
            elif kind == "persistent":
                self.stats.persistent_marks += 1
            if self.telemetry is not None:
                self.telemetry.on_mark(type(self).__name__, packet, kind, now)
            return True
        self.stats.aqm_drops += 1
        return False


class NullAqm(Aqm):
    """No marking at all: pure drop-tail.  Useful as a control in tests."""

    def on_enqueue(self, packet: Packet, now: float, queue_bytes: int) -> bool:
        self.stats.packets_seen += 1
        return True
