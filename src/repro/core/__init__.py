"""AQM schemes: ECN# (the paper's contribution) and its comparison baselines."""

from .base import Aqm, MarkingStats, NullAqm
from .codel import Codel
from .ecn_sharp import EcnSharp, EcnSharpConfig
from .ecn_sharp_prob import EcnSharpProbabilistic, ProbabilisticConfig
from .params import (
    LAMBDA_DCTCP,
    LAMBDA_ECN_TCP,
    EcnSharpRuleOfThumb,
    derive_ecn_sharp_params,
    marking_threshold_bytes,
    marking_threshold_seconds,
)
from .red import DctcpRed, ProbabilisticRed, SojournRed
from .tcn import Tcn

__all__ = [
    "Aqm",
    "MarkingStats",
    "NullAqm",
    "Codel",
    "EcnSharp",
    "EcnSharpConfig",
    "EcnSharpProbabilistic",
    "ProbabilisticConfig",
    "DctcpRed",
    "SojournRed",
    "ProbabilisticRed",
    "Tcn",
    "LAMBDA_DCTCP",
    "LAMBDA_ECN_TCP",
    "EcnSharpRuleOfThumb",
    "derive_ecn_sharp_params",
    "marking_threshold_bytes",
    "marking_threshold_seconds",
]
