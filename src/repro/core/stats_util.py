"""Shared sample-statistics helpers.

One interpolation-consistent percentile definition for every consumer:
the FCT breakdown (:mod:`repro.experiments.fct`), the queue monitor
(:mod:`repro.sim.monitor`) and the validation statistics
(:mod:`repro.validation.stats`) all historically computed percentiles
slightly differently (numpy linear interpolation vs nearest-rank), which
made cross-layer comparisons subtly inconsistent.  This module is the
single definition: linear interpolation on the sorted sample, identical
to ``numpy.percentile(..., method="linear")``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["percentile", "percentile_or_none", "mean_or_none"]


def percentile(values: Sequence[float], p: float) -> float:
    """p-th percentile by linear interpolation on the sorted sample.

    ``rank = (n - 1) * p / 100`` with linear interpolation between the two
    bracketing order statistics -- numpy's default ("linear") method.  A
    single-element sample returns that element for every ``p``; an empty
    sample raises (callers that want a sentinel use
    :func:`percentile_or_none`).
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    n = len(values)
    if n == 0:
        raise ValueError("percentile of an empty sample is undefined")
    ordered = sorted(float(v) for v in values)
    if n == 1:
        return ordered[0]
    rank = (n - 1) * (p / 100.0)
    lower = int(math.floor(rank))
    upper = min(lower + 1, n - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def percentile_or_none(values: Sequence[float], p: float) -> Optional[float]:
    """:func:`percentile`, or ``None`` for an empty sample."""
    if len(values) == 0:
        return None
    return percentile(values, p)


def mean_or_none(values: Sequence[float]) -> Optional[float]:
    """Arithmetic mean, or ``None`` for an empty sample."""
    n = len(values)
    if n == 0:
        return None
    return float(sum(float(v) for v in values) / n)
