"""ECN# with probabilistic instantaneous marking (Section 3.5 extension).

Rate-based transports such as DCQCN need a RED-style probability ramp
between two thresholds (Kmin/Kmax) rather than cut-off marking, or their
rate convergence breaks.  The paper sketches the extension: "change the
original cut-off marking into probabilistic marking, and keep the marking
based on persistent congestion unchanged since it is conducted in a
probabilistic way".

:class:`EcnSharpProbabilistic` implements exactly that: the instantaneous
component marks with probability 0 below ``ins_min``, ramping linearly to
``pmax`` at ``ins_max`` (sojourn-time equivalents of Kmin/Kmax through
Equation 2), while Algorithm 1's persistent component is inherited verbatim
from :class:`~repro.core.ecn_sharp.EcnSharp`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..sim.packet import Packet
from .ecn_sharp import EcnSharp, EcnSharpConfig

__all__ = ["EcnSharpProbabilistic", "ProbabilisticConfig"]


@dataclass(frozen=True)
class ProbabilisticConfig:
    """The instantaneous ramp: Kmin/Kmax in sojourn-time terms.

    Attributes:
        ins_min: sojourn time at which instantaneous marking begins.
        ins_max: sojourn time at which the marking probability reaches
            ``pmax`` (marks with probability 1 above it).
        pmax: probability at ``ins_max`` (DCQCN deployments commonly use
            small values like 0.01-0.1; 1.0 recovers near-cut-off marking).
    """

    ins_min: float
    ins_max: float
    pmax: float = 1.0

    def __post_init__(self) -> None:
        if self.ins_min <= 0 or self.ins_max <= 0:
            raise ValueError("thresholds must be positive")
        if self.ins_max < self.ins_min:
            raise ValueError("ins_max must be >= ins_min")
        if not 0.0 < self.pmax <= 1.0:
            raise ValueError("pmax must be in (0, 1]")


class EcnSharpProbabilistic(EcnSharp):
    """ECN# whose instantaneous component is a RED-style probability ramp.

    The persistent component (Algorithm 1) is unchanged; ``ins_target`` of
    the base config doubles as the hard cut-off above which every packet is
    marked (set it to ``ramp.ins_max`` for a pure ramp).
    """

    def __init__(
        self,
        config: EcnSharpConfig,
        ramp: ProbabilisticConfig,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(config)
        if ramp.ins_max > config.ins_target:
            raise ValueError(
                "the ramp must saturate at or below the hard cut-off "
                "(ramp.ins_max <= config.ins_target)"
            )
        self.ramp = ramp
        self._rng = random.Random(seed)

    def marking_probability(self, sojourn: float) -> float:
        """Instantaneous marking probability at a given sojourn time."""
        ramp = self.ramp
        if sojourn < ramp.ins_min:
            return 0.0
        if sojourn >= ramp.ins_max:
            return 1.0 if sojourn > self.config.ins_target else ramp.pmax
        span = ramp.ins_max - ramp.ins_min
        if span == 0:
            return ramp.pmax
        return ramp.pmax * (sojourn - ramp.ins_min) / span

    def on_dequeue(self, packet: Packet, now: float) -> bool:
        self.stats.packets_seen += 1
        persistent = self._should_persistent_mark(packet, now)
        sojourn = packet.sojourn_time(now)
        probability = self.marking_probability(sojourn)
        if probability >= 1.0 or (
            probability > 0.0 and self._rng.random() < probability
        ):
            return self._congestion_signal(packet, kind="instant", now=now)
        if persistent:
            return self._congestion_signal(packet, kind="persistent", now=now)
        return True
