"""DCTCP-RED: instantaneous ECN marking.

The paper uses *DCTCP-RED* for the modified RED of the DCTCP paper: a single
threshold ``Kmin = Kmax = K`` compared against the **instantaneous** queue,
marking every packet while the queue exceeds K (a "cut-off" marker, not a
probabilistic one).

Two signal variants are provided:

* :class:`DctcpRed` -- classic queue-length signal, evaluated at enqueue
  against a byte threshold K (Equation 1: ``K = lambda * C * RTT``).
* :class:`SojournRed` -- sojourn-time signal, evaluated at dequeue against a
  time threshold T (Equation 2: ``T = lambda * RTT``).  With a single FIFO
  these behave identically (T = K / C); with a multi-queue scheduler only the
  sojourn variant stays meaningful, which is TCN's observation.

:class:`ProbabilisticRed` implements the DCQCN-style ``Kmin < Kmax`` ramp
discussed in Section 3.5 (probabilistic instantaneous marking), provided as
the extension point the paper sketches for rate-based transports.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim.packet import Packet
from .base import Aqm

__all__ = ["DctcpRed", "SojournRed", "ProbabilisticRed"]


class DctcpRed(Aqm):
    """Instantaneous queue-length marking with a single cut-off threshold.

    Args:
        threshold_bytes: K.  A packet arriving when the instantaneous queue
            occupancy (excluding itself) is at or above K gets CE-marked.
    """

    def __init__(self, threshold_bytes: int) -> None:
        super().__init__()
        if threshold_bytes <= 0:
            raise ValueError("marking threshold must be positive")
        self.threshold_bytes = threshold_bytes

    def on_enqueue(self, packet: Packet, now: float, queue_bytes: int) -> bool:
        self.stats.packets_seen += 1
        if queue_bytes >= self.threshold_bytes:
            return self._congestion_signal(packet, kind="instant", now=now)
        return True


class SojournRed(Aqm):
    """Instantaneous sojourn-time marking with a single cut-off threshold.

    Equivalent to DCTCP-RED through Equation 2; marks at dequeue when the
    packet's time in queue exceeded ``threshold_seconds``.
    """

    def __init__(self, threshold_seconds: float) -> None:
        super().__init__()
        if threshold_seconds <= 0:
            raise ValueError("marking threshold must be positive")
        self.threshold_seconds = threshold_seconds

    def on_dequeue(self, packet: Packet, now: float) -> bool:
        self.stats.packets_seen += 1
        if packet.sojourn_time(now) > self.threshold_seconds:
            return self._congestion_signal(packet, kind="instant", now=now)
        return True


class ProbabilisticRed(Aqm):
    """RED with a linear marking ramp between Kmin and Kmax (Section 3.5).

    Marking probability is 0 below ``kmin_bytes``, rises linearly to
    ``pmax`` at ``kmax_bytes``, and is 1 above ``kmax_bytes`` -- the marking
    profile DCQCN expects from switches.
    """

    def __init__(
        self,
        kmin_bytes: int,
        kmax_bytes: int,
        pmax: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if kmin_bytes <= 0 or kmax_bytes <= 0:
            raise ValueError("thresholds must be positive")
        if kmax_bytes < kmin_bytes:
            raise ValueError("Kmax must be >= Kmin")
        if not 0.0 < pmax <= 1.0:
            raise ValueError("pmax must be in (0, 1]")
        self.kmin_bytes = kmin_bytes
        self.kmax_bytes = kmax_bytes
        self.pmax = pmax
        self._rng = random.Random(seed)

    def marking_probability(self, queue_bytes: int) -> float:
        """The marking probability at a given instantaneous occupancy."""
        if queue_bytes < self.kmin_bytes:
            return 0.0
        if queue_bytes >= self.kmax_bytes:
            return 1.0
        span = self.kmax_bytes - self.kmin_bytes
        if span == 0:
            return 1.0
        return self.pmax * (queue_bytes - self.kmin_bytes) / span

    def on_enqueue(self, packet: Packet, now: float, queue_bytes: int) -> bool:
        self.stats.packets_seen += 1
        probability = self.marking_probability(queue_bytes)
        if probability > 0.0 and self._rng.random() < probability:
            return self._congestion_signal(packet, kind="instant", now=now)
        return True
