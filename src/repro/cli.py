"""Command-line interface: regenerate any paper experiment by name.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig6 --full
    python -m repro run fig6 --jobs 4
    python -m repro run fig11 --seed 7
    python -m repro run fig10 --trace --trace-out t.jsonl --metrics-out m.json
    python -m repro run fig5 --results-out fig5.json
    python -m repro run fig6 --dry-run
    python -m repro validate capture --scale tiny
    python -m repro validate run --scale tiny --report-out report.json
    python -m repro validate crossfid --scale tiny --report-out agreement.json
    python -m repro scenario list scenarios/
    python -m repro scenario check scenarios/
    python -m repro scenario run scenarios/fig6_websearch.toml --store campaign.jsonl
    python -m repro scenario run scenarios/leafspine_1024.toml --fidelity fluid
    python -m repro scenario run scenarios/ --store shared.jsonl --shared
    python -m repro scenario merge a.jsonl b.jsonl --out merged.jsonl
    python -m repro scenario report --store campaign.jsonl
    python -m repro cache gc --max-bytes 512M --max-age 604800
    python -m repro serve --store-dir results/ --port 8077
    python -m repro query --url http://127.0.0.1:8077 --metric avg_query_fct
    python -m repro query --store-dir results/ --scheme ECN# --format csv

``--full`` switches to paper-scale parameters (equivalent to REPRO_FULL=1);
experiments accept a ``--seed`` for reproducibility.  ``--jobs N`` (or
``REPRO_JOBS=N``) fans the experiment's run grid across N worker processes;
results are bit-identical to ``--jobs 1``.  Completed cells are memoized
under ``~/.cache/repro`` (``--cache-dir``/``REPRO_CACHE_DIR`` to move it,
``--no-cache`` to bypass), so re-rendering a figure skips the simulations
it has already run.

Every run prints a ``# profile:`` line (events dispatched, events/second,
wall seconds per virtual second, peak heap depth) -- the perf baseline
optimization work is judged against.  ``--trace`` turns on the
flight-recorder event trace, ``--trace-out`` exports it as JSONL,
``--metrics-out`` writes the metrics registry snapshot plus a run manifest
(seed, scale, git SHA, event counts) as JSON, and ``--results-out`` dumps
the experiment's structured result grid (JSON, or CSV with a ``.csv``
suffix).  See DESIGN.md ("Telemetry & instrumentation").

Fault tolerance: a cell that crashes, stalls or hangs does not abort the
figure.  Failed cells are retried (``--retries``/``REPRO_RETRIES``, default
1), optionally bounded by a per-spec wall-clock budget
(``--spec-timeout``/``REPRO_SPEC_TIMEOUT``, off by default), and finally
recorded; the figure renders the surviving cells with gaps, a failure
summary table is printed, and the exit code is non-zero only when *no*
cell produced a usable result.

``scenario`` runs declarative scenario files (see the README's "Scenarios"
section): ``list``/``check`` inspect and validate them without simulating,
``run`` executes one file or a directory as a resumable campaign appending
each finished cell to a crash-safe JSONL store (rerunning skips completed
cells), and ``report`` renders per-scenario tables straight from the store.
``run --shared`` lets N concurrent processes share one store (lease-based
cell claiming under an advisory lock; a killed worker's cells are reclaimed
after ``--lease-ttl``); ``merge`` combines N stores idempotently, failing
hard when two ok records disagree; ``cache gc`` evicts result-cache entries
by size/age and clears quarantined ``*.corrupt`` entries.  SIGINT/SIGTERM
during ``scenario run`` finishes and appends the in-flight shard, then
exits ``128+signum`` with the store fully resumable.
``--dry-run`` (on ``run`` and ``scenario run``) prints the resolved spec
grid with per-cell cache status and exits without simulating.

``serve`` runs the long-lived results daemon (see DESIGN.md "Results
service"): read-only HTTP queries over every campaign store under
``--store-dir``, answered from a summary-tier LRU keyed by store
fingerprint + query hash, with ``ETag``/304 revalidation and a graceful
SIGTERM drain.  ``query`` is its client -- point it at a live daemon with
``--url`` or at a store directory with ``--store-dir`` for the same
answer computed in-process.

``validate capture`` snapshots the reduced-scale validation grid into a
checked-in golden baseline; ``validate run`` replays the same grid (pure
cache hits when nothing changed) and gates it with statistical
cell-by-cell comparisons plus paper-trend invariants.  Exit codes:
0 pass/warn, 1 confirmed regression, 2 stale/missing baseline or dirty
tree.  See EXPERIMENTS.md ("Validation & tolerances").

``validate crossfid`` runs a sampled cell subset at both engine fidelities
(packet and the flow-level fluid model) and gates their agreement:
statistical FCT/marking/queue comparisons plus the paper-trend invariants
re-checked on the fluid results.  Exit codes: 0 pass/warn, 1 fail.
``scenario run --fidelity fluid`` (or ``[run] fidelity`` in the scenario
file, or ``REPRO_FIDELITY=fluid``) compiles a campaign against the fluid
engine -- seconds instead of minutes at 1000+ hosts.  See DESIGN.md
("Fluid fast model").
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from .experiments.figures import (
    fig2,
    fig3,
    fig5,
    fig6_fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
)
from .experiments.executor import (
    Executor,
    default_cache_dir,
    set_default_executor,
)
from .experiments.report import (
    format_failure_table,
    format_manifest,
    format_trace_summary,
    to_csv,
    to_json,
)
from .experiments.runner import Scale
from .logs import configure_logging, get_logger
from .sim.units import ms
from .telemetry import CATEGORIES, RunManifest, Telemetry, activate, make_progress

__all__ = ["main", "EXPERIMENTS"]

log = get_logger("cli")

RunnerResult = Tuple[str, object]


def _run_table1(scale: Scale, seed: int) -> RunnerResult:
    result = table1.run_table1(seed=seed)
    return table1.render(result), result


def _run_fig2(scale: Scale, seed: int) -> RunnerResult:
    result = fig2.run_fig2(
        seed=seed, n_flows=scale.n_flows_web_search, n_seeds=scale.n_seeds
    )
    return fig2.render(result), result


def _run_fig3(scale: Scale, seed: int) -> RunnerResult:
    result = fig3.run_fig3(
        seed=seed, n_flows=scale.n_flows_web_search, n_seeds=scale.n_seeds
    )
    return fig3.render(result), result


def _run_fig5(scale: Scale, seed: int) -> RunnerResult:
    result = fig5.run_fig5()
    return fig5.render(result), result


def _run_fig6(scale: Scale, seed: int) -> RunnerResult:
    result = fig6_fig7.run_fig6(
        loads=scale.loads,
        n_flows=scale.n_flows_web_search,
        seed=seed,
        n_seeds=scale.n_seeds,
    )
    return fig6_fig7.render(result, "Figure 6"), result


def _run_fig7(scale: Scale, seed: int) -> RunnerResult:
    result = fig6_fig7.run_fig7(
        loads=scale.loads,
        n_flows=scale.n_flows_data_mining,
        seed=seed,
        n_seeds=scale.n_seeds,
    )
    return fig6_fig7.render(result, "Figure 7"), result


def _run_fig8(scale: Scale, seed: int) -> RunnerResult:
    result = fig8.run_fig8(
        n_flows=scale.n_flows_web_search, seed=seed, n_seeds=scale.n_seeds
    )
    return fig8.render(result), result


def _run_fig9(scale: Scale, seed: int) -> RunnerResult:
    result = fig9.run_fig9(
        loads=scale.leafspine_loads,
        n_flows=scale.n_flows_leafspine,
        seed=seed,
        dims=scale.leafspine_dims,
        n_seeds=scale.n_seeds,
    )
    return fig9.render(result), result


def _run_fig10(scale: Scale, seed: int) -> RunnerResult:
    result = fig10.run_fig10(seed=seed)
    return fig10.render(result), result


def _run_fig11(scale: Scale, seed: int) -> RunnerResult:
    result = fig11.run_fig11(fanouts=scale.fanouts, seed=seed)
    return fig11.render(result), result


def _run_fig12(scale: Scale, seed: int) -> RunnerResult:
    result = fig12.run_fig12(seed=seed)
    return fig12.render(result), result


def _run_fig13(scale: Scale, seed: int) -> RunnerResult:
    result = fig13.run_fig13(seed=seed)
    return fig13.render(result), result


EXPERIMENTS: Dict[str, Tuple[str, Callable[[Scale, int], RunnerResult]]] = {
    "table1": ("Table 1 / Fig 1: RTT variations from processing components", _run_table1),
    "fig2": ("Fig 2: instantaneous-threshold sweep dilemma", _run_fig2),
    "fig3": ("Fig 3: degradation vs RTT-variation magnitude", _run_fig3),
    "fig5": ("Fig 5: workload flow-size CDFs", _run_fig5),
    "fig6": ("Fig 6: testbed FCT vs load (web search)", _run_fig6),
    "fig7": ("Fig 7: testbed FCT vs load (data mining)", _run_fig7),
    "fig8": ("Fig 8: FCT under 3x-5x RTT variations", _run_fig8),
    "fig9": ("Fig 9: leaf-spine large-scale FCT vs load", _run_fig9),
    "fig10": ("Fig 10: microscopic queue occupancy", _run_fig10),
    "fig11": ("Fig 11: query FCT vs incast fanout", _run_fig11),
    "fig12": ("Fig 12: ECN# parameter sensitivity", _run_fig12),
    "fig13": ("Fig 13: ECN# under DWRR scheduling vs TCN", _run_fig13),
}

SUMMARIZERS: Dict[str, Callable[[object], dict]] = {
    "table1": table1.summarize_for_validation,
    "fig2": fig2.summarize_for_validation,
    "fig3": fig3.summarize_for_validation,
    "fig5": fig5.summarize_for_validation,
    "fig6": fig6_fig7.summarize_for_validation,
    "fig7": fig6_fig7.summarize_for_validation,
    "fig8": fig8.summarize_for_validation,
    "fig9": fig9.summarize_for_validation,
    "fig10": fig10.summarize_for_validation,
    "fig11": fig11.summarize_for_validation,
    "fig12": fig12.summarize_for_validation,
    "fig13": fig13.summarize_for_validation,
}


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    """Shared worker-pool / cache / fault-tolerance options."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the run grid (default: REPRO_JOBS or 1; "
        "1 executes in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always simulate, ignoring and not writing the result cache",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts for a failed cell before recording the failure "
        "(default: REPRO_RETRIES or 1)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base delay for deterministic seeded exponential backoff "
        "between retry attempts, with jitter, capped at 30s (default: "
        "REPRO_RETRY_BACKOFF or off; 0 disables)",
    )
    parser.add_argument(
        "--spec-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget; a cell still running past it is "
        "abandoned and recorded as a timeout failure (default: "
        "REPRO_SPEC_TIMEOUT or off; forces pool execution)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    """Shared live-progress / span-tracing options."""
    parser.add_argument(
        "--progress",
        nargs="?",
        const="auto",
        choices=["auto", "tty", "jsonl"],
        default=None,
        metavar="MODE",
        help="live progress on stderr: 'tty' (self-overwriting line), "
        "'jsonl' (one JSON heartbeat per update), or 'auto' (tty when "
        "stderr is a terminal, jsonl otherwise; the default when the flag "
        "is given bare)",
    )
    parser.add_argument(
        "--progress-out",
        metavar="PATH",
        default=None,
        help="write JSONL heartbeat lines to PATH (implies --progress jsonl)",
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="record a hierarchical span tree (campaign/grid/cell/engine "
        "phases, wall + virtual clocks) and print its summary",
    )
    parser.add_argument(
        "--spans-out",
        metavar="PATH",
        default=None,
        help="write the span tree as JSON (implies --spans)",
    )


def _build_progress(args):
    """``(reporter, owned_stream)`` from the progress flags (both None
    when progress is off); the caller closes both."""
    if args.progress_out is not None:
        stream = open(args.progress_out, "w", encoding="utf-8")
        return make_progress("jsonl", stream=stream, min_interval=0.0), stream
    if args.progress is not None:
        return make_progress(args.progress, stream=sys.stderr), None
    return None, None


def _finish_observability(args, telemetry, progress, progress_stream) -> None:
    """Close the progress reporter and emit span summary/export."""
    if progress is not None:
        progress.close()
    if progress_stream is not None:
        progress_stream.close()
    if telemetry is not None and telemetry.spans is not None:
        log.info(f"# {telemetry.spans.summary_line()}")
        if args.spans_out is not None:
            with open(args.spans_out, "w", encoding="utf-8") as handle:
                json.dump({"spans": telemetry.spans.to_list()}, handle,
                          indent=2, sort_keys=True)
                handle.write("\n")
            log.info(f"# spans written to {args.spans_out}")


def _build_executor(args, parser: argparse.ArgumentParser) -> Executor:
    """Resolve the executor options (CLI flag beats environment)."""
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    jobs = args.jobs
    if jobs is None:
        raw_jobs = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = max(1, int(raw_jobs)) if raw_jobs else 1
        except ValueError:
            parser.error(f"REPRO_JOBS={raw_jobs!r} is not an integer")
    retries = args.retries
    if retries is None:
        raw_retries = os.environ.get("REPRO_RETRIES", "").strip()
        try:
            retries = max(0, int(raw_retries)) if raw_retries else 1
        except ValueError:
            parser.error(f"REPRO_RETRIES={raw_retries!r} is not an integer")
    if retries < 0:
        parser.error("--retries must be >= 0")
    retry_backoff = args.retry_backoff
    if retry_backoff is None:
        raw_backoff = os.environ.get("REPRO_RETRY_BACKOFF", "").strip()
        try:
            retry_backoff = float(raw_backoff) if raw_backoff else None
        except ValueError:
            parser.error(
                f"REPRO_RETRY_BACKOFF={raw_backoff!r} is not a number"
            )
    if retry_backoff is not None and retry_backoff <= 0:
        retry_backoff = None  # 0 / negative = explicitly off
    spec_timeout = args.spec_timeout
    if spec_timeout is None:
        raw_timeout = os.environ.get("REPRO_SPEC_TIMEOUT", "").strip()
        try:
            spec_timeout = float(raw_timeout) if raw_timeout else None
        except ValueError:
            parser.error(f"REPRO_SPEC_TIMEOUT={raw_timeout!r} is not a number")
    if spec_timeout is not None and spec_timeout <= 0:
        spec_timeout = None  # 0 / negative = explicitly off
    cache_dir = args.cache_dir or default_cache_dir()
    return Executor(
        jobs=jobs,
        cache=not args.no_cache,
        cache_dir=cache_dir,
        retries=retries,
        retry_backoff=retry_backoff,
        spec_timeout=spec_timeout,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Enabling ECN for Datacenter "
        "Networks with RTT Variations' (CoNEXT 2019).",
    )
    parser.add_argument(
        "-q", "--quiet",
        action="store_true",
        help="suppress '#' diagnostic lines (warnings/errors still print)",
    )
    parser.add_argument(
        "-v", "--verbose",
        action="count",
        default=0,
        help="enable debug-level diagnostics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments")

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), metavar="experiment")
    run.add_argument(
        "--full",
        action="store_true",
        help="paper-scale parameters (slow; equivalent to REPRO_FULL=1)",
    )
    run.add_argument("--seed", type=int, default=None, help="override the seed")
    run.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resolved spec grid with per-cell cache status and "
        "exit without simulating",
    )
    _add_executor_args(run)
    _add_observability_args(run)
    run.add_argument(
        "--trace",
        action="store_true",
        help="record a flight-recorder event trace of the run",
    )
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="export the event trace as JSONL (implies --trace)",
    )
    run.add_argument(
        "--trace-categories",
        metavar="CATS",
        default=None,
        help=(
            "comma-separated categories to trace (implies --trace); "
            f"available: {','.join(CATEGORIES)}"
        ),
    )
    run.add_argument(
        "--trace-capacity",
        type=int,
        default=65_536,
        metavar="N",
        help="flight-recorder ring size (oldest events evicted beyond it)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write metrics snapshot + run manifest as JSON",
    )
    run.add_argument(
        "--results-out",
        metavar="PATH",
        default=None,
        help="write the structured result grid (JSON; CSV when the path "
        "ends in .csv)",
    )

    validate = sub.add_parser(
        "validate",
        help="fidelity gates: capture golden baselines / run the validation "
        "grid against them",
    )
    validate_sub = validate.add_subparsers(dest="validate_command", required=True)

    capture = validate_sub.add_parser(
        "capture", help="run the validation grid and write its golden baseline"
    )
    run_gate = validate_sub.add_parser(
        "run", help="run the validation grid and gate it against the baseline"
    )
    for verb in (capture, run_gate):
        verb.add_argument(
            "--scale",
            default="tiny",
            choices=["tiny", "reduced"],
            help="validation grid size (default: tiny)",
        )
        verb.add_argument(
            "--baseline-dir",
            metavar="DIR",
            default="baselines",
            help="directory holding <scale>.json baselines (default: baselines)",
        )
        verb.add_argument(
            "--bench",
            metavar="PATH",
            default=None,
            help="BENCH_engine.json payload (embedded at capture; compared "
            "at run)",
        )
        _add_executor_args(verb)
    capture.add_argument(
        "--force",
        action="store_true",
        help="allow capturing from a dirty working tree (manifest records it)",
    )
    run_gate.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="explicit baseline file (default: <baseline-dir>/<scale>.json)",
    )
    run_gate.add_argument(
        "--report-out",
        metavar="PATH",
        default=None,
        help="write the full validation report as JSON",
    )

    crossfid = validate_sub.add_parser(
        "crossfid",
        help="run sampled cells at both packet and fluid fidelity and gate "
        "their agreement (no baseline needed)",
    )
    crossfid.add_argument(
        "--scale",
        default="tiny",
        choices=["tiny", "reduced"],
        help="validation grid whose fig6/fig10 cells are sampled "
        "(default: tiny)",
    )
    crossfid.add_argument(
        "--report-out",
        metavar="PATH",
        default=None,
        help="write the cross-fidelity agreement report as JSON",
    )
    _add_executor_args(crossfid)

    scenario = sub.add_parser(
        "scenario",
        help="declarative scenarios: list/check/run/report scenario files",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    s_list = scenario_sub.add_parser(
        "list", help="list scenario files with their compiled cell counts"
    )
    s_list.add_argument(
        "path", nargs="?", default="scenarios", metavar="PATH",
        help="scenario file or directory (default: scenarios/)",
    )

    s_check = scenario_sub.add_parser(
        "check",
        help="validate and deep-check scenario files (no simulation)",
    )
    s_check.add_argument(
        "path", nargs="?", default="scenarios", metavar="PATH",
        help="scenario file or directory (default: scenarios/)",
    )

    s_run = scenario_sub.add_parser(
        "run", help="run scenario file(s) as a resumable campaign"
    )
    s_run.add_argument(
        "path", metavar="PATH", help="scenario file or directory"
    )
    s_run.add_argument(
        "--store",
        metavar="PATH",
        default="campaign.jsonl",
        help="campaign result store, JSONL, appended to on every pass "
        "(default: campaign.jsonl)",
    )
    s_run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N pending cells this pass (the rest resume "
        "on the next run)",
    )
    s_run.add_argument(
        "--dry-run",
        action="store_true",
        help="print the compiled cell/spec grid with per-spec cache status "
        "and exit without simulating",
    )
    s_run.add_argument(
        "--fidelity",
        choices=["packet", "fluid"],
        default=None,
        help="engine fidelity for every cell (beats the scenario's "
        "[run] fidelity and REPRO_FIDELITY; default: packet)",
    )
    s_run.add_argument(
        "--shared",
        action="store_true",
        help="multi-writer mode: claim pending cells through lease records "
        "under the store's advisory lock, so any number of concurrent "
        "'scenario run --shared' processes can share one store",
    )
    s_run.add_argument(
        "--worker-id",
        metavar="ID",
        default=None,
        help="worker identity for --shared lease records (default: host:pid)",
    )
    s_run.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds before another worker may reclaim a claimed cell "
        "(--shared; default: REPRO_LEASE_TTL or 60)",
    )
    s_run.add_argument(
        "--lock-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="how long to wait for the store lock before giving up "
        "(--shared; default: 60)",
    )
    _add_executor_args(s_run)
    _add_observability_args(s_run)

    s_merge = scenario_sub.add_parser(
        "merge",
        help="merge N campaign stores into one canonical store "
        "(idempotent; latest-ok-wins; hard error on ok/ok content conflict)",
    )
    s_merge.add_argument(
        "stores", nargs="+", metavar="STORE",
        help="input campaign store JSONL files",
    )
    s_merge.add_argument(
        "--out",
        metavar="PATH",
        required=True,
        help="output store path (atomically replaced; may be an input)",
    )

    s_report = scenario_sub.add_parser(
        "report",
        help="render per-scenario result tables from the campaign store "
        "(no simulation)",
    )
    s_report.add_argument(
        "path", nargs="?", default=None, metavar="PATH",
        help="restrict the report to these scenario files (file or "
        "directory; default: everything in the store)",
    )
    s_report.add_argument(
        "--store",
        metavar="PATH",
        default="campaign.jsonl",
        help="campaign result store to read (default: campaign.jsonl)",
    )

    cache = sub.add_parser(
        "cache",
        help="result-cache maintenance: eviction and quarantine cleanup",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    c_gc = cache_sub.add_parser(
        "gc",
        help="evict cache entries by size budget and/or age; removes "
        "quarantined *.corrupt entries and stray write temps",
    )
    c_gc.add_argument(
        "--max-bytes",
        metavar="SIZE",
        default=None,
        help="keep at most SIZE bytes of entries, newest first "
        "(suffixes K/M/G, e.g. 512M)",
    )
    c_gc.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict entries older than SECONDS",
    )
    c_gc.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    c_gc.add_argument(
        "--keep-corrupt",
        action="store_true",
        help="keep quarantined *.corrupt entries for inspection",
    )

    obs = sub.add_parser(
        "obs",
        help="offline observability: dashboards from campaign stores and "
        "benchmark trend files (no simulation)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    o_report = obs_sub.add_parser(
        "report",
        help="render a markdown/HTML dashboard from a campaign store, its "
        "resource sidecar, and the perf trend file",
    )
    o_report.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="campaign store JSONL (default: none; trend-only report)",
    )
    o_report.add_argument(
        "--resources",
        metavar="PATH",
        default=None,
        help="resource sidecar JSONL (default: <store>.resources.jsonl)",
    )
    o_report.add_argument(
        "--trend",
        metavar="PATH",
        default=None,
        help="benchmark trend JSONL (e.g. benchmarks/results/trend.jsonl)",
    )
    o_report.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the markdown dashboard to PATH (default: stdout)",
    )
    o_report.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help="also write a standalone HTML dashboard to PATH",
    )
    o_report.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the slowest-cells table (default: 10)",
    )
    o_report.add_argument(
        "--metricz",
        metavar="PATH",
        default=None,
        help="results-service /metricz JSON dump to render as a service "
        "section (requests, cache hit rate, store loads)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived results daemon: read-only HTTP queries "
        "over campaign stores with a fingerprint-keyed summary cache",
    )
    serve.add_argument(
        "--store-dir",
        metavar="DIR",
        required=True,
        help="directory of campaign store JSONL files to serve (scanned "
        "recursively; sidecars excluded)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="HOST",
        help="listen address (default: 127.0.0.1; single-host by design)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8077,
        metavar="PORT",
        help="listen port (default: 8077; 0 binds an ephemeral port, "
        "printed on the startup line)",
    )
    serve.add_argument(
        "--golden-dir",
        metavar="DIR",
        default=None,
        help="golden baseline directory to serve read-only at /goldens",
    )
    serve.add_argument(
        "--cache-max-bytes",
        metavar="SIZE",
        default="32M",
        help="summary-cache byte cap (suffixes K/M/G; default: 32M)",
    )
    serve.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="summary-cache entry TTL (default: none -- entries live "
        "until LRU eviction or a store change orphans them)",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="record 'service' flight-recorder events per request",
    )

    query = sub.add_parser(
        "query",
        help="query campaign results from a live daemon (--url) or "
        "straight from a store directory (--store-dir)",
    )
    query.add_argument(
        "--url",
        metavar="URL",
        default=None,
        help="base URL of a running `repro serve` daemon; with "
        "--store-dir too, an unreachable daemon falls back in-process",
    )
    query.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help="store directory for in-process reads (no daemon needed)",
    )
    query.add_argument(
        "--store", default="", metavar="NAME",
        help="store name relative to the store dir (default: all stores)",
    )
    query.add_argument(
        "--scenario", default="", metavar="NAME",
        help="filter: exact scenario name",
    )
    query.add_argument(
        "--scheme", default="", metavar="NAME",
        help="filter: exact scheme name from the cell key",
    )
    query.add_argument(
        "--metric", default="", metavar="NAME",
        help="filter: exact metric name",
    )
    query.add_argument(
        "--fidelity", default="", metavar="NAME",
        help="filter: engine fidelity (packet or fluid)",
    )
    query.add_argument(
        "--token", default="", metavar="SUBSTRING",
        help="filter: substring of any spec token",
    )
    query.add_argument(
        "--status",
        default="ok",
        choices=("ok", "failed", "any"),
        help="cell status to include (default: ok)",
    )
    query.add_argument(
        "--mode",
        default="summary",
        choices=("summary", "cells"),
        help="summary aggregates (mean/p50/p95/p99) or raw cell rows",
    )
    query.add_argument(
        "--format",
        dest="fmt",
        default="json",
        choices=("json", "csv"),
        help="output format (default: json)",
    )
    query.add_argument(
        "--if-none-match",
        metavar="ETAG",
        default="",
        help="conditional request: expect 304 while the store fingerprint "
        "is unchanged",
    )
    query.add_argument(
        "--etag-out",
        metavar="PATH",
        default=None,
        help="write the response ETag to PATH (for later --if-none-match)",
    )
    query.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the response body to PATH (default: stdout)",
    )
    return parser


_DEFAULT_SEEDS = {
    "table1": 1, "fig2": 7, "fig3": 11, "fig5": 0, "fig6": 21, "fig7": 22,
    "fig8": 31, "fig9": 41, "fig10": 51, "fig11": 61, "fig12": 71, "fig13": 81,
}


def _write_results(path: str, summary: dict) -> None:
    """Dump a ``summarize_for_validation`` grid as JSON or (flattened) CSV."""
    if path.endswith(".csv"):
        rows = []
        for cell, metrics in summary.get("cells", {}).items():
            for metric, value in metrics.items():
                rows.append([summary.get("figure", ""), cell, metric, value])
        for name, value in summary.get("derived", {}).items():
            rows.append([summary.get("figure", ""), "derived", name, value])
        to_csv(["figure", "cell", "metric", "value"], rows, path)
    else:
        to_json(summary, path)
    log.info(f"# results written to {path}")


def _dry_run_table(specs, is_cached) -> Tuple[str, int]:
    """Render the resolved grid with cache status; returns (table, hits)."""
    from .experiments.report import format_table

    rows = [
        [spec.token(), "hit" if is_cached(spec) else "miss"] for spec in specs
    ]
    hits = sum(1 for row in rows if row[1] == "hit")
    return format_table(["spec", "cache"], rows), hits


def _main_run(args, parser: argparse.ArgumentParser) -> int:
    description, runner = EXPERIMENTS[args.experiment]
    scale = Scale.paper() if args.full else Scale.from_env()
    seed = args.seed if args.seed is not None else _DEFAULT_SEEDS[args.experiment]

    if args.dry_run:
        return _dry_run_experiment(args, runner, scale, seed)

    executor = _build_executor(args, parser)

    trace_enabled = (
        args.trace or args.trace_out is not None or args.trace_categories is not None
    )
    categories = (
        [c.strip() for c in args.trace_categories.split(",") if c.strip()]
        if args.trace_categories is not None
        else None
    )
    if categories is not None:
        unknown = sorted(set(categories) - set(CATEGORIES))
        if unknown:
            parser.error(
                f"unknown trace categories: {','.join(unknown)} "
                f"(available: {','.join(CATEGORIES)})"
            )
    if args.trace_capacity <= 0:
        parser.error("--trace-capacity must be positive")
    # Fail on an unwritable output path now, not after a long run.
    for option, path in (("--trace-out", args.trace_out),
                         ("--metrics-out", args.metrics_out),
                         ("--results-out", args.results_out)):
        if path is not None:
            directory = os.path.dirname(path) or "."
            if not os.path.isdir(directory):
                parser.error(f"{option}: directory does not exist: {directory}")
    collect_metrics = args.metrics_out is not None
    # Per-packet hooks attach only when something consumes them; a plain
    # run keeps the bare hot-path cost and still gets the profiler line.
    telemetry = Telemetry(
        trace=trace_enabled,
        trace_categories=categories,
        ring_capacity=args.trace_capacity,
        metrics=collect_metrics,
        snapshot_interval=ms(1) if collect_metrics else None,
        spans=args.spans or args.spans_out is not None,
    )
    manifest = RunManifest.collect(args.experiment, seed=seed, scale=scale)
    manifest.retry_backoff = executor.retry_backoff
    progress, progress_stream = _build_progress(args)
    executor.progress = progress

    log.info(f"# {description} (seed={seed}, {'full' if scale.full else 'reduced'} scale)")
    started = time.time()
    previous_executor = set_default_executor(executor)
    try:
        with activate(telemetry):
            text, result = runner(scale, seed)
            print(text)
    finally:
        set_default_executor(previous_executor)
        _finish_observability(args, telemetry, progress, progress_stream)
    wall = time.time() - started
    events = telemetry.profiler.events if telemetry.profiler else None
    if not events and telemetry.manifests:
        # Worker-process / cache-replay runs dispatch no events in this
        # process; their registered manifests carry the real counts.
        events = sum(m.events or 0 for m in telemetry.manifests) or None
    manifest.finish(wall_seconds=wall, events=events)
    log.info(f"# completed in {wall:.1f}s")
    log.info(
        f"# executor: jobs={executor.jobs} {executor.stats.merge_line()} "
        f"cache={'off' if executor.cache is None else executor.cache.directory}"
    )
    if executor.failures:
        print(format_failure_table(executor.failures))
    if telemetry.profiler is not None:
        log.info(f"# {telemetry.profiler.summary_line()}")
    log.info(f"# {format_manifest(manifest)}")
    if telemetry.recorder is not None:
        log.info(f"# {format_trace_summary(telemetry.recorder)}")
    if args.trace_out is not None:
        written = telemetry.recorder.export_jsonl(args.trace_out)
        log.info(f"# trace written to {args.trace_out} ({written} events)")
    if args.metrics_out is not None:
        snapshot = telemetry.snapshot()
        snapshot["manifest"] = manifest.to_dict()
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        log.info(f"# metrics written to {args.metrics_out}")
    if args.results_out is not None:
        _write_results(args.results_out, SUMMARIZERS[args.experiment](result))
    stats = executor.stats
    if stats.submitted and stats.failed >= stats.submitted:
        # Partial grids render with gaps and exit 0; only a figure with
        # zero usable cells is a hard failure.
        log.error("# error: every cell failed; no usable results")
        return 1
    return 0


def _dry_run_experiment(args, runner, scale: Scale, seed: int) -> int:
    """``run --dry-run``: capture the experiment's resolved spec grid via a
    :class:`DryRunExecutor` and print it with cache status -- no simulation
    (experiments that build no executor grid, e.g. fig5, simply report so).
    """
    from .experiments.executor import DryRunComplete, DryRunExecutor

    dry = DryRunExecutor(
        cache=not args.no_cache,
        cache_dir=args.cache_dir or default_cache_dir(),
    )
    previous_executor = set_default_executor(dry)
    captured = False
    try:
        try:
            runner(scale, seed)
        except DryRunComplete:
            captured = True
    finally:
        set_default_executor(previous_executor)
    if not captured and not dry.captured:
        print(f"# dry run: {args.experiment} builds no executor spec grid")
        return 0
    table, hits = _dry_run_table(dry.captured, dry.is_cached)
    log.info(f"# dry run: resolved spec grid for {args.experiment} (seed={seed})")
    print(table)
    print(
        f"# {len(dry.captured)} spec(s): {hits} cached, "
        f"{len(dry.captured) - hits} to execute; nothing simulated"
    )
    return 0


def _main_scenario(args, parser: argparse.ArgumentParser) -> int:
    from .scenarios import (
        ScenarioError,
        check_scenario,
        compile_scenario,
        load_scenario,
        load_scenario_dir,
        render_store_report,
        run_campaign,
    )

    def load_pairs(path: str):
        if os.path.isdir(path):
            return load_scenario_dir(path)
        return [(path, load_scenario(path))]

    if args.scenario_command == "merge":
        from .scenarios import MergeConflictError, merge_stores

        for store_path in args.stores:
            if not os.path.exists(store_path):
                log.error(f"# error: no such store: {store_path}")
                return 2
        try:
            merged = merge_stores(args.stores, output=args.out)
        except MergeConflictError as exc:
            log.error(f"# error: {exc}")
            return 1
        except OSError as exc:
            log.error(f"# error: {exc}")
            return 2
        print(
            f"# merge: {merged.summary_line()} "
            f"({len(args.stores)} store(s) -> {args.out})"
        )
        return 0

    if args.scenario_command == "report":
        scenarios = None
        if args.path is not None:
            try:
                scenarios = [s for _, s in load_pairs(args.path)]
            except (ScenarioError, FileNotFoundError) as exc:
                log.error(f"# error: {exc}")
                return 2
        print(render_store_report(args.store, scenarios))
        return 0

    if args.scenario_command in ("list", "check"):
        deep = args.scenario_command == "check"
        status = 0
        try:
            pairs = load_pairs(args.path)
        except (ScenarioError, FileNotFoundError) as exc:
            log.error(f"# error: {exc}")
            return 2
        for path, scenario in pairs:
            try:
                compiled = (
                    check_scenario(scenario) if deep
                    else compile_scenario(scenario)
                )
            except ScenarioError as exc:
                log.error(f"# error: {exc}")
                status = 1
                continue
            line = (
                f"{os.path.basename(str(path))}  {scenario.name}  "
                f"cells={len(compiled.cells)} specs={compiled.n_specs}"
            )
            if deep:
                line += "  ok"
            elif scenario.description:
                line += f"  {scenario.description}"
            print(line)
        return status

    # scenario run
    if args.max_cells is not None and args.max_cells < 1:
        parser.error("--max-cells must be >= 1")
    try:
        pairs = load_pairs(args.path)
        scenarios = [s for _, s in pairs]
        compiled = [
            compile_scenario(s, fidelity=args.fidelity) for s in scenarios
        ]
    except (ScenarioError, FileNotFoundError, ValueError) as exc:
        log.error(f"# error: {exc}")
        return 2

    if args.dry_run:
        from .experiments.executor import ResultCache

        cache = (
            None if args.no_cache
            else ResultCache(args.cache_dir or default_cache_dir())
        )

        def is_cached(spec) -> bool:
            return cache is not None and cache.path(spec).exists()

        total = 0
        hits = 0
        for comp in compiled:
            specs = comp.specs()
            table, comp_hits = _dry_run_table(specs, is_cached)
            print(
                f"# dry run: scenario {comp.scenario.name} "
                f"({len(comp.cells)} cells, {len(specs)} specs)"
            )
            print(table)
            total += len(specs)
            hits += comp_hits
        print(
            f"# {total} spec(s): {hits} cached, {total - hits} to execute; "
            "nothing simulated"
        )
        return 0

    if not args.shared:
        for option in ("worker_id", "lease_ttl", "lock_timeout"):
            if getattr(args, option) is not None:
                parser.error(
                    f"--{option.replace('_', '-')} requires --shared"
                )

    from .scenarios import GracefulShutdown, LockTimeout

    executor = _build_executor(args, parser)
    telemetry = Telemetry(spans=args.spans or args.spans_out is not None)
    progress, progress_stream = _build_progress(args)
    started = time.time()
    previous_executor = set_default_executor(executor)
    try:
        with activate(telemetry), GracefulShutdown() as shutdown:
            result = run_campaign(
                scenarios,
                store=args.store,
                executor=executor,
                max_cells=args.max_cells,
                progress=progress,
                shared=args.shared,
                worker_id=args.worker_id,
                lease_ttl=args.lease_ttl,
                lock_timeout=args.lock_timeout,
                shutdown=shutdown,
                fidelity=args.fidelity,
            )
    except LockTimeout as exc:
        log.error(f"# error: {exc}")
        return 1
    finally:
        set_default_executor(previous_executor)
        _finish_observability(args, telemetry, progress, progress_stream)
    wall = time.time() - started
    print(f"# campaign: {result.summary_line()} ({wall:.1f}s)")
    log.info(
        f"# executor: jobs={executor.jobs} {executor.stats.merge_line()} "
        f"cache={'off' if executor.cache is None else executor.cache.directory}"
    )
    log.info(f"# store: {args.store} ({len(result.records)} record(s) this pass)")
    if executor.failures:
        print(format_failure_table(executor.failures))
    if result.interrupted:
        log.error(
            "# interrupted: current shard appended, store is resumable "
            "(rerun the same command to continue)"
        )
        return 128 + (result.interrupt_signum or 2)
    settled = result.executed_cells + result.skipped_cells
    if settled and result.failed_cells >= settled:
        log.error("# error: every cell failed; no usable results")
        return 1
    return 0


def _main_validate(args, parser: argparse.ArgumentParser) -> int:
    from .validation import (
        DirtyTreeError,
        StaleBaselineError,
        capture_baselines,
        run_crossfid,
        run_gate,
    )
    from .validation.stats import FAIL

    executor = _build_executor(args, parser)
    telemetry = Telemetry()
    previous_executor = set_default_executor(executor)
    try:
        with activate(telemetry):
            if args.validate_command == "crossfid":
                report = run_crossfid(args.scale, executor)
                print(report.render_text())
                log.info(
                    f"# executor: jobs={executor.jobs} "
                    f"{executor.stats.merge_line()}"
                )
                if args.report_out is not None:
                    report.to_json(args.report_out)
                    log.info(f"# report written to {args.report_out}")
                return 1 if report.status == FAIL else 0

            if args.validate_command == "capture":
                try:
                    baseline, path, outcome = capture_baselines(
                        args.scale,
                        executor,
                        baseline_dir=args.baseline_dir,
                        force=args.force,
                        bench_path=args.bench,
                    )
                except DirtyTreeError as exc:
                    log.error(f"# error: {exc}")
                    return 2
                except RuntimeError as exc:
                    log.error(f"# error: {exc}")
                    return 1
                cells = sum(
                    len(fig["cells"]) for fig in baseline.figures.values()
                )
                print(
                    f"# baseline captured: {path} ({cells} cells, "
                    f"sha={baseline.manifest.git_sha}, "
                    f"dirty={baseline.manifest.git_dirty})"
                )
                log.info(
                    f"# executor: jobs={executor.jobs} "
                    f"{executor.stats.merge_line()}"
                )
                return 0

            try:
                report = run_gate(
                    args.scale,
                    executor,
                    baseline_path=args.baseline,
                    baseline_dir=args.baseline_dir,
                    bench_path=args.bench,
                )
            except (StaleBaselineError, FileNotFoundError) as exc:
                log.error(f"# error: {exc}")
                return 2
            print(report.render_text())
            log.info(
                f"# executor: jobs={executor.jobs} "
                f"{executor.stats.merge_line()}"
            )
            if args.report_out is not None:
                report.to_json(args.report_out)
                log.info(f"# report written to {args.report_out}")
            return 1 if report.status == FAIL else 0
    finally:
        set_default_executor(previous_executor)


def _parse_size(raw: str, parser: argparse.ArgumentParser, option: str) -> int:
    """Parse a byte size with an optional K/M/G suffix (binary multiples)."""
    text = raw.strip().upper()
    multiplier = 1
    for suffix, factor in (("K", 1024), ("M", 1024 ** 2), ("G", 1024 ** 3)):
        if text.endswith(suffix):
            multiplier = factor
            text = text[: -len(suffix)]
            break
    try:
        value = int(float(text) * multiplier)
    except ValueError:
        parser.error(f"{option}: {raw!r} is not a size (try 512M, 2G, 1048576)")
    if value < 0:
        parser.error(f"{option} must be >= 0")
    return value


def _main_cache(args, parser: argparse.ArgumentParser) -> int:
    from .experiments.executor import ResultCache

    max_bytes = (
        _parse_size(args.max_bytes, parser, "--max-bytes")
        if args.max_bytes is not None
        else None
    )
    if args.max_age is not None and args.max_age < 0:
        parser.error("--max-age must be >= 0")
    cache = ResultCache(args.cache_dir or default_cache_dir())
    stats = cache.gc(
        max_bytes=max_bytes,
        max_age_seconds=args.max_age,
        remove_corrupt=not args.keep_corrupt,
    )
    print(f"# cache gc: {stats.summary_line()} dir={cache.directory}")
    return 0


def _main_obs(args, parser: argparse.ArgumentParser) -> int:
    from .obs import build_report

    if args.store is None and args.trend is None and args.metricz is None:
        parser.error("obs report needs --store, --trend and/or --metricz")
    if args.top < 1:
        parser.error("--top must be >= 1")
    report = build_report(
        store=args.store,
        resources=args.resources,
        trend=args.trend,
        metricz=args.metricz,
        top=args.top,
    )
    markdown = report.to_markdown()
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(markdown)
            if not markdown.endswith("\n"):
                handle.write("\n")
        log.info(f"# report written to {args.out}")
    else:
        print(markdown)
    if args.html is not None:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(report.to_html())
        log.info(f"# html written to {args.html}")
    return 0


def _main_serve(args, parser: argparse.ArgumentParser) -> int:
    from .service import serve as run_service

    cache_max_bytes = _parse_size(
        args.cache_max_bytes, parser, "--cache-max-bytes"
    )
    if cache_max_bytes <= 0:
        parser.error("--cache-max-bytes must be > 0")
    if args.cache_ttl is not None and args.cache_ttl <= 0:
        parser.error("--cache-ttl must be > 0 seconds")
    if not os.path.isdir(args.store_dir):
        parser.error(f"--store-dir {args.store_dir!r} is not a directory")
    telemetry = Telemetry(
        metrics=True,
        profile=False,
        trace_categories=["service"] if args.trace else None,
    )
    return run_service(
        args.store_dir,
        host=args.host,
        port=args.port,
        golden_dir=args.golden_dir,
        cache_max_bytes=cache_max_bytes,
        cache_ttl=args.cache_ttl,
        telemetry=telemetry,
    )


def _main_query(args, parser: argparse.ArgumentParser) -> int:
    from .service import ResultsService, ServiceClient, ServiceUnavailable

    if args.url is None and args.store_dir is None:
        parser.error("query needs --url and/or --store-dir")
    params = {
        "store": args.store,
        "scenario": args.scenario,
        "scheme": args.scheme,
        "metric": args.metric,
        "fidelity": args.fidelity,
        "token": args.token,
        "status": args.status,
        "mode": args.mode,
        "format": args.fmt,
    }
    status = etag = body = None
    if args.url is not None:
        try:
            response = ServiceClient(args.url).query(
                params, etag=args.if_none_match
            )
            status, etag, body = response.status, response.etag, response.body
        except ServiceUnavailable as exc:
            if args.store_dir is None:
                log.error(f"# query: {exc}")
                return 1
            # warning -> stderr, keeping stdout pure JSON/CSV for pipes
            log.warning(f"# query: daemon unreachable, reading "
                        f"{args.store_dir} in-process")
    if status is None:
        service = ResultsService(args.store_dir)
        response = service.dispatch(
            "/query",
            {k: v for k, v in params.items() if v},
            {"If-None-Match": args.if_none_match},
        )
        status, etag, body = response.status, response.etag, response.body
    if args.etag_out is not None and etag:
        with open(args.etag_out, "w", encoding="utf-8") as handle:
            handle.write(etag + "\n")
    if status == 304:
        print(f"# not modified (etag {etag})")
        return 0
    if status != 200:
        detail = body.decode("utf-8", "replace").strip()
        log.error(f"# query failed: HTTP {status} {detail}")
        return 1
    text = body.decode("utf-8")
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        log.info(f"# query result written to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(quiet=args.quiet, verbose=args.verbose)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0
    if args.command == "validate":
        return _main_validate(args, parser)
    if args.command == "scenario":
        return _main_scenario(args, parser)
    if args.command == "cache":
        return _main_cache(args, parser)
    if args.command == "obs":
        return _main_obs(args, parser)
    if args.command == "serve":
        return _main_serve(args, parser)
    if args.command == "query":
        return _main_query(args, parser)
    return _main_run(args, parser)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
