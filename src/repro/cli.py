"""Command-line interface: regenerate any paper experiment by name.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig6 --full
    python -m repro run fig11 --seed 7

``--full`` switches to paper-scale parameters (equivalent to REPRO_FULL=1);
experiments accept a ``--seed`` for reproducibility.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from .experiments.figures import (
    fig2,
    fig3,
    fig5,
    fig6_fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
)
from .experiments.runner import Scale

__all__ = ["main", "EXPERIMENTS"]


def _run_table1(scale: Scale, seed: int) -> str:
    return table1.render(table1.run_table1(seed=seed))


def _run_fig2(scale: Scale, seed: int) -> str:
    return fig2.render(
        fig2.run_fig2(
            seed=seed, n_flows=scale.n_flows_web_search, n_seeds=scale.n_seeds
        )
    )


def _run_fig3(scale: Scale, seed: int) -> str:
    return fig3.render(
        fig3.run_fig3(
            seed=seed, n_flows=scale.n_flows_web_search, n_seeds=scale.n_seeds
        )
    )


def _run_fig5(scale: Scale, seed: int) -> str:
    return fig5.render(fig5.run_fig5())


def _run_fig6(scale: Scale, seed: int) -> str:
    result = fig6_fig7.run_fig6(
        loads=scale.loads,
        n_flows=scale.n_flows_web_search,
        seed=seed,
        n_seeds=scale.n_seeds,
    )
    return fig6_fig7.render(result, "Figure 6")


def _run_fig7(scale: Scale, seed: int) -> str:
    result = fig6_fig7.run_fig7(
        loads=scale.loads,
        n_flows=scale.n_flows_data_mining,
        seed=seed,
        n_seeds=scale.n_seeds,
    )
    return fig6_fig7.render(result, "Figure 7")


def _run_fig8(scale: Scale, seed: int) -> str:
    return fig8.render(
        fig8.run_fig8(
            n_flows=scale.n_flows_web_search, seed=seed, n_seeds=scale.n_seeds
        )
    )


def _run_fig9(scale: Scale, seed: int) -> str:
    return fig9.render(
        fig9.run_fig9(
            loads=scale.leafspine_loads,
            n_flows=scale.n_flows_leafspine,
            seed=seed,
            dims=scale.leafspine_dims,
            n_seeds=scale.n_seeds,
        )
    )


def _run_fig10(scale: Scale, seed: int) -> str:
    return fig10.render(fig10.run_fig10(seed=seed))


def _run_fig11(scale: Scale, seed: int) -> str:
    return fig11.render(fig11.run_fig11(fanouts=scale.fanouts, seed=seed))


def _run_fig12(scale: Scale, seed: int) -> str:
    return fig12.render(fig12.run_fig12(seed=seed))


def _run_fig13(scale: Scale, seed: int) -> str:
    return fig13.render(fig13.run_fig13(seed=seed))


EXPERIMENTS: Dict[str, Tuple[str, Callable[[Scale, int], str]]] = {
    "table1": ("Table 1 / Fig 1: RTT variations from processing components", _run_table1),
    "fig2": ("Fig 2: instantaneous-threshold sweep dilemma", _run_fig2),
    "fig3": ("Fig 3: degradation vs RTT-variation magnitude", _run_fig3),
    "fig5": ("Fig 5: workload flow-size CDFs", _run_fig5),
    "fig6": ("Fig 6: testbed FCT vs load (web search)", _run_fig6),
    "fig7": ("Fig 7: testbed FCT vs load (data mining)", _run_fig7),
    "fig8": ("Fig 8: FCT under 3x-5x RTT variations", _run_fig8),
    "fig9": ("Fig 9: leaf-spine large-scale FCT vs load", _run_fig9),
    "fig10": ("Fig 10: microscopic queue occupancy", _run_fig10),
    "fig11": ("Fig 11: query FCT vs incast fanout", _run_fig11),
    "fig12": ("Fig 12: ECN# parameter sensitivity", _run_fig12),
    "fig13": ("Fig 13: ECN# under DWRR scheduling vs TCN", _run_fig13),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Enabling ECN for Datacenter "
        "Networks with RTT Variations' (CoNEXT 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments")

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), metavar="experiment")
    run.add_argument(
        "--full",
        action="store_true",
        help="paper-scale parameters (slow; equivalent to REPRO_FULL=1)",
    )
    run.add_argument("--seed", type=int, default=None, help="override the seed")
    return parser


_DEFAULT_SEEDS = {
    "table1": 1, "fig2": 7, "fig3": 11, "fig5": 0, "fig6": 21, "fig7": 22,
    "fig8": 31, "fig9": 41, "fig10": 51, "fig11": 61, "fig12": 71, "fig13": 81,
}


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    description, runner = EXPERIMENTS[args.experiment]
    scale = Scale.paper() if args.full else Scale.from_env()
    seed = args.seed if args.seed is not None else _DEFAULT_SEEDS[args.experiment]
    print(f"# {description} (seed={seed}, {'full' if scale.full else 'reduced'} scale)")
    started = time.time()
    print(runner(scale, seed))
    print(f"# completed in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
