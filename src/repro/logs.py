"""CLI logging: a ``repro.*`` logger hierarchy that stays byte-compatible
with the CLI's historical ``print`` diagnostics.

Design constraints, in order:

* **Byte-stable default output.**  Tests (and CI greps) assert exact
  diagnostic lines on stdout/stderr, so the handler writes
  ``record.getMessage()`` verbatim plus a newline -- no level prefix, no
  timestamps, no formatting.
* **capsys-friendly.**  ``sys.stdout``/``sys.stderr`` are looked up at
  *emit* time, never cached, so pytest's stream swapping sees every line.
* **Severity routing matches ``print``'s old file= choices**: INFO and
  below go to stdout, WARNING and up to stderr.

``configure_logging`` maps the CLI's ``--quiet``/``-v`` flags onto the
``repro`` root logger's level: WARNING (quiet), INFO (default, exactly
the historical output), DEBUG (verbose).  Idempotent -- repeated CLI
invocations in one process (the test suite) never stack handlers.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_logging"]


class _StreamRouter(logging.Handler):
    """Verbatim-message handler routing by severity to the *current*
    ``sys.stdout`` / ``sys.stderr``."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            stream = (
                sys.stderr if record.levelno >= logging.WARNING
                else sys.stdout
            )
            stream.write(record.getMessage() + "\n")
        except Exception:  # pragma: no cover - mirror logging's contract
            self.handleError(record)


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro`` root logger, or a ``repro.<name>`` child."""
    return logging.getLogger(f"repro.{name}" if name else "repro")


def configure_logging(quiet: bool = False, verbose: int = 0) -> logging.Logger:
    """Install the byte-stable handler and set the level from the CLI
    flags (``--quiet`` wins over ``-v``)."""
    root = get_logger()
    if not any(isinstance(h, _StreamRouter) for h in root.handlers):
        root.addHandler(_StreamRouter())
    root.propagate = False
    if quiet:
        root.setLevel(logging.WARNING)
    elif verbose > 0:
        root.setLevel(logging.DEBUG)
    else:
        root.setLevel(logging.INFO)
    return root
