"""Hot-path profiling for :meth:`repro.sim.engine.Simulator.run`.

A :class:`RunProfiler` accumulates, across every ``run()`` call of every
simulator it is attached to, the numbers that matter for performance work:

* events dispatched and wall-clock seconds spent dispatching them
  (-> events/second, the DES figure of merit);
* virtual seconds simulated (-> wall seconds per virtual second, the
  number that says how far from real time the reproduction runs);
* peak heap depth (pending events), the memory-pressure proxy.

The engine samples heap depth only every ``HEAP_SAMPLE_MASK + 1`` dispatches
so the instrumented loop stays within a few percent of the bare loop; the
profiler itself does no per-event work.
"""

from __future__ import annotations

__all__ = ["RunProfiler", "HEAP_SAMPLE_MASK"]

HEAP_SAMPLE_MASK = 0x3FF
"""Dispatch-count mask: heap depth is sampled every 1024 events."""


class RunProfiler:
    """Aggregated Simulator.run statistics (see module docstring)."""

    __slots__ = (
        "runs",
        "events",
        "wall_seconds",
        "virtual_seconds",
        "peak_heap_depth",
    )

    def __init__(self) -> None:
        self.runs = 0
        self.events = 0
        self.wall_seconds = 0.0
        self.virtual_seconds = 0.0
        self.peak_heap_depth = 0

    # ----------------------------------------------------------- engine API

    def record_run(
        self,
        events: int,
        wall_seconds: float,
        virtual_seconds: float,
        peak_heap_depth: int,
    ) -> None:
        """Fold one ``run()`` call into the totals (called by the engine)."""
        self.runs += 1
        self.events += events
        self.wall_seconds += wall_seconds
        self.virtual_seconds += virtual_seconds
        if peak_heap_depth > self.peak_heap_depth:
            self.peak_heap_depth = peak_heap_depth

    # ------------------------------------------------------------ reporting

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def wall_per_virtual_second(self) -> float:
        if self.virtual_seconds <= 0:
            return 0.0
        return self.wall_seconds / self.virtual_seconds

    def summary_line(self) -> str:
        """One-line report, printed by the CLI after each experiment."""
        return (
            f"profile: {self.events:,} events over {self.runs} run(s) in "
            f"{self.wall_seconds:.2f}s wall "
            f"({self.events_per_second:,.0f} ev/s, "
            f"{self.wall_per_virtual_second:,.1f} s-wall per s-virtual, "
            f"peak heap {self.peak_heap_depth:,})"
        )

    def to_dict(self) -> dict:
        return {
            "runs": self.runs,
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "virtual_seconds": self.virtual_seconds,
            "events_per_second": self.events_per_second,
            "wall_per_virtual_second": self.wall_per_virtual_second,
            "peak_heap_depth": self.peak_heap_depth,
        }
