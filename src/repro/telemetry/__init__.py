"""Telemetry: metrics registry, flight-recorder tracing, profiling, and
run provenance for the whole reproduction stack.

Quick start::

    from repro.telemetry import Telemetry, activate

    with activate(Telemetry(trace=True)) as tel:
        result = run_star_fct(...)          # instruments itself
    tel.recorder.export_jsonl("trace.jsonl")
    snapshot = tel.snapshot()               # metrics + ports + profile

See DESIGN.md ("Telemetry & instrumentation") for the architecture and
the zero-overhead-when-disabled contract.
"""

from .events import CATEGORIES, FlightRecorder, TraceEvent
from .hub import Telemetry
from .profiler import RunProfiler
from .progress import (
    JsonlHeartbeat,
    ProgressReporter,
    ProgressTracker,
    TtyProgress,
    make_progress,
)
from .provenance import RunManifest, git_sha
from .spans import Span, SpanTracer, maybe_span
from .registry import (
    FCT_US_BUCKETS,
    QUEUE_PKT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshotter,
)
from .runtime import activate, dataplane_telemetry, get_active, set_active

__all__ = [
    "CATEGORIES",
    "FlightRecorder",
    "TraceEvent",
    "Telemetry",
    "RunProfiler",
    "RunManifest",
    "git_sha",
    "Span",
    "SpanTracer",
    "maybe_span",
    "ProgressTracker",
    "ProgressReporter",
    "TtyProgress",
    "JsonlHeartbeat",
    "make_progress",
    "FCT_US_BUCKETS",
    "QUEUE_PKT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Snapshotter",
    "activate",
    "dataplane_telemetry",
    "get_active",
    "set_active",
]
