"""Run provenance: a manifest describing exactly how a result was produced.

Every figure the paper reports is a function of (code version, seed, scale,
scheme parameters).  :class:`RunManifest` captures those plus the runtime
environment and the run's cost (wall time, event count) so any exported
result can be traced back to the configuration that produced it, months
later, without guessing.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Dict, Optional

__all__ = ["RunManifest", "git_sha"]

_GIT_SHA_CACHE: Dict[str, Optional[str]] = {}


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current commit SHA, or None outside a git checkout / without git."""
    key = cwd or "."
    if key not in _GIT_SHA_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=5,
            )
            _GIT_SHA_CACHE[key] = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA_CACHE[key] = None
    return _GIT_SHA_CACHE[key]


def _plain(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable data."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _plain(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class RunManifest:
    """Everything needed to reproduce (or audit) one run."""

    experiment: str
    seed: Optional[int] = None
    scale: Optional[dict] = None
    params: Dict[str, Any] = field(default_factory=dict)
    git_sha: Optional[str] = None
    python: str = ""
    platform: str = ""
    started_unix: float = 0.0
    wall_seconds: Optional[float] = None
    events: Optional[int] = None
    scheduler: Optional[str] = None
    """Event-queue implementation the run used (``repro.sim.eventq``)."""
    retry_backoff: Optional[float] = None
    """Base seconds of the executor's seeded retry backoff, when enabled
    (``--retry-backoff`` / ``REPRO_RETRY_BACKOFF``): delays are a pure
    function of (spec token, attempt, this base), so recording the base
    makes retried runs bit-reproducible end to end."""

    @classmethod
    def collect(
        cls,
        experiment: str,
        seed: Optional[int] = None,
        scale: Any = None,
        **params: Any,
    ) -> "RunManifest":
        """Capture configuration + environment at run start."""
        return cls(
            experiment=experiment,
            seed=seed,
            scale=_plain(scale) if scale is not None else None,
            params={k: _plain(v) for k, v in params.items()},
            git_sha=git_sha(),
            python=sys.version.split()[0],
            platform=platform.platform(),
            started_unix=time.time(),
        )

    def finish(
        self, wall_seconds: Optional[float] = None, events: Optional[int] = None
    ) -> "RunManifest":
        """Record the run's cost once it has completed; returns self."""
        self.wall_seconds = wall_seconds
        self.events = events
        return self

    def to_dict(self) -> dict:
        return _plain(asdict(self))

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
