"""The :class:`Telemetry` facade: one object wiring registry + recorder +
profiler + provenance together.

Instrumented code (ports, AQMs, senders) holds either ``None`` or a
``Telemetry`` and calls the ``on_*`` hooks below.  Each hook updates the
metrics registry and, when the corresponding trace category is enabled,
appends a flight-recorder event.  The contract with the hot paths is:

* attachment happens once, at object construction, via
  :func:`repro.telemetry.runtime.dataplane_telemetry`;
* a disabled run attaches ``None``, so the per-packet cost is one load
  and one ``is not None`` check -- no event objects are ever built.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import FlightRecorder
from .profiler import RunProfiler
from .registry import (
    FCT_US_BUCKETS,
    QUEUE_PKT_BUCKETS,
    MetricsRegistry,
    Snapshotter,
)
from .spans import SpanTracer

__all__ = ["Telemetry"]


class Telemetry:
    """Aggregation point for one observed run (or batch of runs).

    Args:
        trace: enable the flight recorder.
        trace_categories: categories to record (implies ``trace``); ``None``
            with ``trace=True`` records everything.
        ring_capacity: flight-recorder ring size.
        metrics: instrument the data plane / transports for the registry.
            With ``metrics=False`` and ``trace=False`` only the engine
            profiler runs (the CLI's default, zero per-packet cost).
        snapshot_interval: if set, sample per-port queue depth time series
            every this many *virtual* seconds.
        profile: attach a :class:`RunProfiler` to simulators.
        spans: attach a :class:`~repro.telemetry.spans.SpanTracer` so the
            campaign/grid/cell/engine-phase layers record a hierarchical
            span tree (near-free when off: instrumented code checks for a
            ``None`` tracer and allocates nothing).
    """

    def __init__(
        self,
        trace: bool = False,
        trace_categories: Optional[list] = None,
        ring_capacity: int = 65_536,
        metrics: bool = True,
        snapshot_interval: Optional[float] = None,
        snapshot_max_sims: int = 4,
        profile: bool = True,
        spans: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(ring_capacity, trace_categories)
            if trace or trace_categories is not None
            else None
        )
        self.profiler: Optional[RunProfiler] = RunProfiler() if profile else None
        self.spans: Optional[SpanTracer] = SpanTracer() if spans else None
        self.metrics_enabled = metrics
        self.snapshot_interval = snapshot_interval
        self.snapshot_max_sims = snapshot_max_sims
        self._ports: List = []
        self._snapshotters: Dict[int, Snapshotter] = {}
        self._sim_ports: Dict[int, List] = {}
        self.manifests: List = []
        self.failures: List = []  # RunFailure records from the executor

    @property
    def instruments_dataplane(self) -> bool:
        """Whether ports/AQMs/senders should attach to this telemetry."""
        return self.metrics_enabled or self.recorder is not None

    # -------------------------------------------------------------- wiring

    def register_port(self, port) -> None:
        """Called by Port.__init__ when this telemetry is active."""
        self._ports.append(port)
        if self.snapshot_interval is None:
            return
        sim_key = id(port.sim)
        snapshotter = self._snapshotters.get(sim_key)
        if snapshotter is None:
            if len(self._snapshotters) >= self.snapshot_max_sims:
                return
            snapshotter = Snapshotter(port.sim, self.snapshot_interval)
            self._snapshotters[sim_key] = snapshotter
            sim_ports: List = []
            self._sim_ports[sim_key] = sim_ports
            registry = self.registry

            def _sample(ports=sim_ports, registry=registry):
                row = {}
                for sampled in ports:
                    depth = sampled.queue_packets
                    row[f"q_pkts[{sampled.name}]"] = depth
                    registry.histogram(
                        "queue_depth_pkts", QUEUE_PKT_BUCKETS, port=sampled.name
                    ).observe(depth)
                return row

            snapshotter.add_sampler(_sample)
        self._sim_ports[sim_key].append(port)

    def add_manifest(self, manifest) -> None:
        self.manifests.append(manifest)

    # ------------------------------------------------------- executor hooks

    def on_run_failure(self, failure) -> None:
        """Record one terminal run failure (an executor ``RunFailure``):
        provenance for the manifest, a counter by failure kind, and a
        flight-recorder event when the ``failure`` category is enabled."""
        self.failures.append(failure)
        self.registry.counter("run_failures_total", kind=failure.kind).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("failure"):
            recorder.emit(
                0.0, "failure", failure.kind,
                spec=failure.spec_key, exc=failure.exc_type,
                message=failure.message, attempts=failure.attempts,
            )

    # ------------------------------------------------------ validation hooks

    def on_validation_verdict(
        self,
        kind: str,
        name: str,
        status: str,
        figure: str = "",
        detail: str = "",
    ) -> None:
        """Record one fidelity-gate verdict (``kind`` is ``"baseline"`` for a
        cell-vs-golden comparison or ``"invariant"`` for a paper-trend
        assertion; ``status`` is pass/warn/fail/skip)."""
        self.registry.counter(
            "validation_verdicts_total", kind=kind, status=status
        ).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("validation"):
            recorder.emit(
                0.0, "validation", status,
                check=kind, name=name, figure=figure, detail=detail,
            )

    # -------------------------------------------------------- campaign hooks

    def on_campaign_cell(
        self, scenario: str, cell_key: str, status: str
    ) -> None:
        """Record one campaign cell settling (``status`` is ``"ok"`` for an
        executed cell, ``"skipped"`` for a store replay, ``"failed"`` for a
        cell whose every seed run died)."""
        self.registry.counter("campaign_cells_total", status=status).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("scenario"):
            recorder.emit(
                0.0, "scenario", status, scenario=scenario, cell=cell_key,
            )

    # ------------------------------------------------------ resilience hooks

    def on_lease_reclaim(self, previous_worker: str) -> None:
        """Record one stale campaign lease reclaimed from a dead worker
        (its cell re-runs on the reclaiming worker)."""
        self.registry.counter("campaign_lease_reclaims_total").inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("resilience"):
            recorder.emit(
                0.0, "resilience", "lease_reclaim", worker=previous_worker,
            )

    def on_cache_corrupt(self, entry: str) -> None:
        """Record one result-cache entry failing its checksum and being
        quarantined to ``*.corrupt``."""
        self.registry.counter("cache_corrupt_total").inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("resilience"):
            recorder.emit(0.0, "resilience", "cache_corrupt", entry=entry)

    def on_chaos_injection(self, mode: str) -> None:
        """Record one fired ``REPRO_CHAOS`` injection (testing only)."""
        self.registry.counter("chaos_injections_total", mode=mode).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("resilience"):
            recorder.emit(0.0, "resilience", "chaos_injection", mode=mode)

    # --------------------------------------------------------- service hooks

    def on_service_request(
        self,
        endpoint: str,
        status: int,
        cache: str,
        wall_seconds: float,
    ) -> None:
        """Record one results-service request: ``endpoint`` is the route
        (``query``, ``stores``, ``healthz``, ``metricz``), ``cache`` is how
        it was answered (``hit``, ``miss``, ``not_modified``, ``none``)."""
        self.registry.counter(
            "service_requests_total", endpoint=endpoint, status=str(status)
        ).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("service"):
            recorder.emit(
                0.0, "service", endpoint,
                status=status, cache=cache, wall_seconds=wall_seconds,
            )

    # ----------------------------------------------------------- fluid hooks

    def on_fluid_run(
        self,
        kind: str,
        steps: int,
        flows: int,
        sim_duration: float,
        wall_seconds: float,
    ) -> None:
        """Record one completed fluid-engine run: total step count (the
        fluid analogue of events dispatched) and a trace event when the
        ``fluid`` category is enabled."""
        self.registry.counter("fluid_steps_total", kind=kind).inc(steps)
        self.registry.counter("fluid_runs_total", kind=kind).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("fluid"):
            recorder.emit(
                sim_duration, "fluid", "run",
                rig=kind, steps=steps, flows=flows,
                wall_seconds=wall_seconds,
            )

    # ------------------------------------------------------ data-plane hooks

    def on_enqueue(self, port, packet, now: float) -> None:
        recorder = self.recorder
        if recorder is not None and recorder.wants("queue"):
            recorder.emit(
                now, "queue", "enqueue",
                port=port.name, flow=packet.flow_id, seq=packet.seq,
                size=packet.size, depth_pkts=port.queue_packets,
            )

    def on_dequeue(self, port, packet, now: float) -> None:
        recorder = self.recorder
        if recorder is not None and recorder.wants("queue"):
            recorder.emit(
                now, "queue", "dequeue",
                port=port.name, flow=packet.flow_id, seq=packet.seq,
                sojourn=now - packet.enqueue_time,
                depth_pkts=port.queue_packets,
            )

    def on_drop(self, port, packet, reason: str, now: float) -> None:
        self.registry.counter("drops_total", port=port.name, reason=reason).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("drop"):
            recorder.emit(
                now, "drop", reason,
                port=port.name, flow=packet.flow_id, seq=packet.seq,
                size=packet.size, depth_pkts=port.queue_packets,
            )

    def on_mark(self, scheme: str, packet, kind: str, now: float) -> None:
        self.registry.counter("marks_total", scheme=scheme, kind=kind).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("mark"):
            recorder.emit(
                now, "mark", kind, scheme=scheme,
                flow=packet.flow_id, seq=packet.seq,
            )

    # ------------------------------------------------------- transport hooks

    def on_cwnd(self, sender, old: float, new: float, reason: str) -> None:
        self.registry.counter(
            "cwnd_cuts_total", cc=type(sender).__name__, reason=reason
        ).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("cwnd"):
            recorder.emit(
                sender.sim.now, "cwnd", reason,
                flow=sender.flow_id, old=old, new=new,
            )

    def on_retransmit(self, sender, seq: int, kind: str) -> None:
        self.registry.counter(
            "retransmits_total", cc=type(sender).__name__, kind=kind
        ).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("retx"):
            recorder.emit(
                sender.sim.now, "retx", kind, flow=sender.flow_id, seq=seq
            )

    def on_timer(self, sender, rto: float) -> None:
        self.registry.counter("rto_fires_total", cc=type(sender).__name__).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("timer"):
            recorder.emit(
                sender.sim.now, "timer", "rto", flow=sender.flow_id, rto=rto
            )

    def on_rate(self, sender, old_bps: float, new_bps: float, reason: str) -> None:
        self.registry.counter("rate_updates_total", reason=reason).inc()
        recorder = self.recorder
        if recorder is not None and recorder.wants("rate"):
            recorder.emit(
                sender.sim.now, "rate", reason,
                flow=sender.flow_id, old_bps=old_bps, new_bps=new_bps,
            )

    def on_flow_complete(self, sender, fct_seconds: float) -> None:
        self.registry.histogram(
            "fct_us", FCT_US_BUCKETS, cc=type(sender).__name__
        ).observe(fct_seconds * 1e6)
        recorder = self.recorder
        if recorder is not None and recorder.wants("flow"):
            recorder.emit(
                sender.sim.now, "flow", "complete",
                flow=sender.flow_id, fct=fct_seconds, size=sender.size_bytes,
            )

    # -------------------------------------------------------------- exports

    def _port_summaries(self) -> dict:
        summaries = {}
        for index, port in enumerate(self._ports):
            stats = port.stats
            summaries[f"{port.name}#{index}"] = {
                "enqueued_packets": stats.enqueued_packets,
                "tx_packets": stats.tx_packets,
                "tx_bytes": stats.tx_bytes,
                "dropped_overflow": stats.dropped_overflow,
                "dropped_aqm": stats.dropped_aqm,
                "buffer_peak_bytes": port.buffer.peak_bytes,
                "final_queue_packets": port.queue_packets,
            }
        return summaries

    def snapshot(self) -> dict:
        """Full JSON-serializable dump: metrics, ports, series, profile,
        trace stats, and any collected manifests."""
        data = {
            "metrics": self.registry.snapshot(),
            "ports": self._port_summaries(),
        }
        if self._snapshotters:
            data["series"] = [s.rows for s in self._snapshotters.values()]
        if self.profiler is not None:
            data["profile"] = self.profiler.to_dict()
        if self.recorder is not None:
            data["trace"] = {
                "emitted": self.recorder.emitted,
                "buffered": len(self.recorder),
                "evicted": self.recorder.evicted,
                "by_category": self.recorder.counts_by_category(),
            }
        if self.manifests:
            data["manifests"] = [m.to_dict() for m in self.manifests]
        if self.failures:
            data["failures"] = [f.to_dict() for f in self.failures]
        if self.spans is not None and self.spans.roots:
            data["spans"] = self.spans.to_list()
        return data
