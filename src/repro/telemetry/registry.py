"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the aggregation side of the telemetry layer: hooks in the
data plane and the transports increment labeled instruments, and a snapshot
of every instrument (plus optional DES-clock-driven time series, see
:class:`Snapshotter`) is exported at the end of a run.

Instruments are identified by a name plus a sorted label set, mirroring the
Prometheus data model so exported snapshots stay greppable::

    registry.counter("port_drops_total", port="s0->recv", reason="overflow")

Histograms use *fixed* bucket schemes (:data:`FCT_US_BUCKETS` for flow
completion times in microseconds, :data:`QUEUE_PKT_BUCKETS` for queue depth
in packets) so that histograms from different runs, schemes, and seeds are
always mergeable bucket-by-bucket.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Snapshotter",
    "FCT_US_BUCKETS",
    "QUEUE_PKT_BUCKETS",
]

FCT_US_BUCKETS: Tuple[float, ...] = (
    50, 100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800,
    25_600, 51_200, 102_400, 204_800, 409_600, 819_200,
)
"""Log-spaced FCT buckets (microseconds): short flows land in the first few
buckets, timeout-inflated flows (+>2 ms) are clearly separated."""

QUEUE_PKT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 2_048, 4_096,
)
"""Power-of-two queue-depth buckets (packets); the paper's interesting
regimes (~8 pkt ECN# target, ~182 pkt RED standing queue) fall in distinct
buckets."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways; tracks its peak."""

    __slots__ = ("value", "peak")

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram:
    """Fixed-bucket histogram with cumulative-style percentile estimates.

    ``bounds`` are inclusive upper bucket edges; observations above the last
    bound land in an implicit overflow bucket.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        # Linear scan: bucket lists are short (<=16) and observations skew
        # toward the first buckets, beating bisect's call overhead.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket containing the p-th percentile.

        Returns ``inf`` when the percentile falls in the overflow bucket and
        0.0 when the histogram is empty.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, -(-int(p * self.count) // 100))  # ceil, at least 1
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.bounds):
                    return float("inf")
                return self.bounds[index]
        return float("inf")

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "buckets": {
                ("+inf" if index >= len(self.bounds) else repr(self.bounds[index])): n
                for index, n in enumerate(self.counts)
            },
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


def _series_key(name: str, labels: Dict[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create store for labeled instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = _series_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _series_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels: object
    ) -> Histogram:
        key = _series_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                bounds if bounds is not None else FCT_US_BUCKETS
            )
        return instrument

    def snapshot(self) -> dict:
        """Plain-dict dump of every instrument (JSON-serializable)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {
                k: {"value": g.value, "peak": g.peak}
                for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                k: h.to_dict() for k, h in sorted(self._histograms.items())
            },
        }


class Snapshotter:
    """Periodic time-series sampler driven by the DES clock.

    Each tick calls every registered sampler (a zero-argument callable
    returning a dict of column -> value) and appends one row.  Rows beyond
    ``max_rows`` evict the oldest so an unexpectedly long run cannot grow
    memory without bound.
    """

    def __init__(
        self,
        sim,
        interval: float,
        max_rows: int = 4096,
        stop: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("snapshot interval must be positive")
        self.sim = sim
        self.interval = interval
        self.stop = stop
        self.max_rows = max_rows
        self.rows: List[dict] = []
        self._samplers: List = []
        sim.schedule(0.0, self._tick)

    def add_sampler(self, sampler) -> None:
        self._samplers.append(sampler)

    def _tick(self) -> None:
        now = self.sim.now
        if self.stop is not None and now > self.stop:
            return
        row: dict = {"time": now}
        for sampler in self._samplers:
            row.update(sampler())
        self.rows.append(row)
        if len(self.rows) > self.max_rows:
            del self.rows[0 : len(self.rows) - self.max_rows]
        self.sim.schedule(self.interval, self._tick)
