"""Flight recorder: a ring-buffered structured event trace.

The recorder is the forensic side of the telemetry layer: instrumented code
emits one :class:`TraceEvent` per interesting occurrence (enqueue, dequeue,
drop, ECN mark, cwnd change, retransmit, timer fire, ...) into a bounded
ring buffer.  When a run misbehaves, the tail of the ring is exported as
JSONL and replayed offline -- the software analogue of a switch's packet
postcard trace.

Categories can be enabled individually so a long run can record only, say,
drops and marks without paying for per-packet queue events.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional

__all__ = ["TraceEvent", "FlightRecorder", "CATEGORIES"]

CATEGORIES: tuple = (
    "queue",   # enqueue / dequeue on a port
    "drop",    # buffer overflow or AQM drop
    "mark",    # ECN CE mark (instant or persistent)
    "cwnd",    # congestion-window change on a sender
    "retx",    # retransmission (fast retransmit, partial ACK, go-back-N)
    "timer",   # retransmission-timeout firing
    "rate",    # DCQCN rate-control update
    "flow",    # flow start / completion
    "failure", # experiment-level run failure (crash, stall, timeout, ...)
    "validation",  # fidelity-gate verdict (baseline cell or paper invariant)
    "scenario",    # campaign cell settled (executed, skipped or failed)
    "resilience",  # lease reclaim, cache quarantine, chaos injection
    "fluid",       # flow-level fluid engine run completed
    "service",     # results-service request handled (query, healthz, ...)
)
"""Every category the built-in instrumentation emits."""


class TraceEvent:
    """One structured trace record."""

    __slots__ = ("time", "category", "kind", "fields")

    def __init__(self, time: float, category: str, kind: str, fields: dict) -> None:
        self.time = time
        self.category = category
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> dict:
        record = {"t": self.time, "cat": self.category, "kind": self.kind}
        record.update(self.fields)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceEvent t={self.time:.9f} {self.category}/{self.kind}>"


class FlightRecorder:
    """Bounded ring buffer of :class:`TraceEvent` records.

    Args:
        capacity: ring size; the oldest events are evicted once full.
        categories: iterable of category names to record, or ``None`` for
            all of :data:`CATEGORIES`.
    """

    def __init__(
        self,
        capacity: int = 65_536,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        wanted = frozenset(CATEGORIES if categories is None else categories)
        unknown = wanted - frozenset(CATEGORIES)
        if unknown:
            raise ValueError(f"unknown trace categories: {sorted(unknown)}")
        self.capacity = capacity
        self.enabled: FrozenSet[str] = wanted
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0  # total emit() calls that passed the category filter

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def evicted(self) -> int:
        """Events overwritten by ring wraparound."""
        return self.emitted - len(self._ring)

    def wants(self, category: str) -> bool:
        """Cheap pre-check so callers can skip building event fields."""
        return category in self.enabled

    def emit(self, time: float, category: str, kind: str, **fields: object) -> None:
        if category not in self.enabled:
            return
        self.emitted += 1
        self._ring.append(TraceEvent(time, category, kind, fields))

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        """Events currently in the ring, oldest first."""
        if category is None:
            return list(self._ring)
        return [e for e in self._ring if e.category == category]

    def counts_by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._ring:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    # ---------------------------------------------------------------- export

    def export_jsonl(self, path: str) -> int:
        """Write the ring to ``path`` as one JSON object per line; returns
        the number of events written."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._ring:
                handle.write(json.dumps(event.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(self._ring)

    @staticmethod
    def load_jsonl(path: str) -> List[TraceEvent]:
        """Parse a trace written by :meth:`export_jsonl` back into events."""
        events: List[TraceEvent] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                time = record.pop("t")
                category = record.pop("cat")
                kind = record.pop("kind")
                events.append(TraceEvent(time, category, kind, record))
        return events
