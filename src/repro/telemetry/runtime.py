"""Process-wide active-telemetry context.

The simulator, ports, AQMs and transports are constructed deep inside the
figure runners, far from where a CLI flag or a test decides to observe a
run.  Rather than threading a telemetry handle through every constructor,
objects pick up the *active* telemetry at construction time:

    with activate(Telemetry(trace=True)) as tel:
        result = run_star_fct(...)   # every port/sender built here reports
    tel.recorder.export_jsonl("trace.jsonl")

When nothing is active (the default), instrumented objects hold ``None``
and every hot-path hook short-circuits on a single attribute check --
no event object, no dict lookup, nothing is built.

This module is imported by ``repro.sim`` and must therefore stay free of
imports from the rest of the package (the facade lives in
:mod:`repro.telemetry.hub`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .hub import Telemetry

__all__ = ["activate", "get_active", "set_active", "dataplane_telemetry"]

_active: Optional["Telemetry"] = None


def get_active() -> Optional["Telemetry"]:
    """The currently active telemetry, or None."""
    return _active


def set_active(telemetry: Optional["Telemetry"]) -> Optional["Telemetry"]:
    """Install ``telemetry`` as active; returns the previous one."""
    global _active
    previous = _active
    _active = telemetry
    return previous


def dataplane_telemetry() -> Optional["Telemetry"]:
    """Active telemetry *if* it wants per-packet instrumentation.

    Ports, AQMs and senders attach this at construction; a profiler-only
    telemetry (the CLI default) returns None here so the per-packet hot
    paths keep their bare-loop cost.
    """
    telemetry = _active
    if telemetry is not None and telemetry.instruments_dataplane:
        return telemetry
    return None


@contextmanager
def activate(telemetry: "Telemetry") -> Iterator["Telemetry"]:
    """Context manager: make ``telemetry`` active for the enclosed block."""
    previous = set_active(telemetry)
    try:
        yield telemetry
    finally:
        set_active(previous)
