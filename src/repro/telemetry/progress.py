"""Live campaign/grid progress: counts, an events/sec EWMA, and an ETA.

A long campaign used to be a black box between "started" and the final
summary line.  This module provides the reporting half of the executor's
progress hooks:

* :class:`ProgressTracker` -- pure accounting (no I/O): cells done /
  failed / retried / cache-hit / store-skipped, an exponentially-weighted
  moving average of simulated events per wall second, and an ETA derived
  from the observed completion rate.  Fully deterministic given its
  inputs, so it is unit-testable without a terminal.
* :class:`TtyProgress` -- a single self-overwriting status line for
  interactive runs (carriage-return repaint, final newline on close).
* :class:`JsonlHeartbeat` -- one JSON object per update for CI and
  non-TTY consumers; machine-parseable, append-only, safe to ``tail -f``.

The executor and the campaign orchestrator call the reporter interface
(``add_total`` / ``cell_done`` / ``retry`` / ``close``); when no reporter
is attached they pay a single ``is not None`` check per settled cell.
"""

from __future__ import annotations

import json
import sys
from time import perf_counter
from typing import Any, Dict, Optional, TextIO

__all__ = [
    "ProgressTracker",
    "ProgressReporter",
    "TtyProgress",
    "JsonlHeartbeat",
    "make_progress",
    "STATUSES",
]

STATUSES = ("ok", "failed", "cache", "skipped")
"""Terminal states a work unit can settle in: executed successfully,
failed terminally, replayed from the result cache, or skipped because the
campaign store already holds it."""

EWMA_ALPHA = 0.3
"""Weight of the newest events/sec sample in the moving average."""


class ProgressTracker:
    """Counts + rate estimation for one grid/campaign pass (no I/O)."""

    __slots__ = (
        "total",
        "ok",
        "failed",
        "cache_hits",
        "skipped",
        "retried",
        "started",
        "events_total",
        "_eps_ewma",
    )

    def __init__(self) -> None:
        self.total = 0
        self.ok = 0
        self.failed = 0
        self.cache_hits = 0
        self.skipped = 0
        self.retried = 0
        self.started = perf_counter()
        self.events_total = 0
        self._eps_ewma: Optional[float] = None

    # -------------------------------------------------------------- inputs

    def add_total(self, n: int) -> None:
        self.total += n

    def record(
        self,
        status: str,
        wall_seconds: Optional[float] = None,
        events: Optional[int] = None,
    ) -> None:
        """Fold one settled unit in.  ``wall_seconds``/``events`` (when the
        unit actually simulated) feed the events/sec EWMA."""
        if status == "ok":
            self.ok += 1
        elif status == "failed":
            self.failed += 1
        elif status == "cache":
            self.cache_hits += 1
        elif status == "skipped":
            self.skipped += 1
        else:
            raise ValueError(f"unknown progress status {status!r}")
        if events:
            self.events_total += events
        if events and wall_seconds and wall_seconds > 0:
            sample = events / wall_seconds
            if self._eps_ewma is None:
                self._eps_ewma = sample
            else:
                self._eps_ewma = (
                    EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * self._eps_ewma
                )

    def record_retry(self) -> None:
        self.retried += 1

    # ------------------------------------------------------------- derived

    @property
    def done(self) -> int:
        return self.ok + self.failed + self.cache_hits + self.skipped

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    @property
    def elapsed(self) -> float:
        return perf_counter() - self.started

    @property
    def events_per_sec(self) -> Optional[float]:
        return self._eps_ewma

    def eta_seconds(self) -> Optional[float]:
        """Remaining units / observed completion rate; None before the
        first settled unit (no rate yet) or once everything is done."""
        if self.remaining == 0:
            return 0.0
        completed = self.done
        elapsed = self.elapsed
        if completed == 0 or elapsed <= 0:
            return None
        return self.remaining / (completed / elapsed)

    def snapshot(self) -> Dict[str, Any]:
        eta = self.eta_seconds()
        eps = self.events_per_sec
        return {
            "done": self.done,
            "total": self.total,
            "ok": self.ok,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "skipped": self.skipped,
            "retried": self.retried,
            "events": self.events_total,
            "events_per_sec": round(eps, 1) if eps is not None else None,
            "eta_seconds": round(eta, 3) if eta is not None else None,
            "elapsed_seconds": round(self.elapsed, 3),
        }


def _fmt_rate(eps: Optional[float]) -> str:
    if eps is None:
        return "-"
    if eps >= 1e6:
        return f"{eps / 1e6:.1f}M ev/s"
    if eps >= 1e3:
        return f"{eps / 1e3:.0f}k ev/s"
    return f"{eps:.0f} ev/s"


def _fmt_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "-"
    if eta >= 3600:
        return f"{eta / 3600:.1f}h"
    if eta >= 60:
        return f"{eta / 60:.1f}m"
    return f"{eta:.0f}s"


class ProgressReporter:
    """Reporter base: a tracker plus throttled emission.

    ``min_interval`` rate-limits repaints/heartbeats (the first and the
    closing update always emit); subclasses implement :meth:`emit`.
    """

    def __init__(
        self, stream: Optional[TextIO] = None, min_interval: float = 0.0
    ) -> None:
        self.tracker = ProgressTracker()
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_emit: Optional[float] = None
        self._closed = False

    # ---------------------------------------------------- executor interface

    def add_total(self, n: int) -> None:
        self.tracker.add_total(n)
        self._maybe_emit()

    def cell_done(
        self,
        status: str,
        wall_seconds: Optional[float] = None,
        events: Optional[int] = None,
    ) -> None:
        self.tracker.record(status, wall_seconds=wall_seconds, events=events)
        self._maybe_emit()

    def retry(self) -> None:
        self.tracker.record_retry()
        self._maybe_emit()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.emit(final=True)

    # ----------------------------------------------------------- emission

    def _maybe_emit(self) -> None:
        now = perf_counter()
        if (
            self._last_emit is not None
            and now - self._last_emit < self.min_interval
        ):
            return
        self._last_emit = now
        self.emit(final=False)

    def emit(self, final: bool) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class TtyProgress(ProgressReporter):
    """Self-overwriting one-line renderer for interactive terminals."""

    def __init__(
        self, stream: Optional[TextIO] = None, min_interval: float = 0.1
    ) -> None:
        super().__init__(stream=stream, min_interval=min_interval)

    def render_line(self) -> str:
        t = self.tracker
        parts = [
            f"# progress: {t.done}/{t.total}",
            f"ok={t.ok} failed={t.failed} cache={t.cache_hits}",
        ]
        if t.skipped:
            parts.append(f"skipped={t.skipped}")
        if t.retried:
            parts.append(f"retried={t.retried}")
        parts.append(f"| {_fmt_rate(t.events_per_sec)}")
        parts.append(f"| eta {_fmt_eta(t.eta_seconds())}")
        return " ".join(parts)

    def emit(self, final: bool) -> None:
        line = self.render_line()
        # Pad over any longer previous repaint, then rewind.
        self.stream.write("\r" + line.ljust(79))
        if final:
            self.stream.write("\n")
        self.stream.flush()


class JsonlHeartbeat(ProgressReporter):
    """One JSON object per update -- the non-TTY / CI heartbeat mode.

    Every line carries ``kind`` (``"progress"`` while running,
    ``"summary"`` for the single closing line) plus the tracker snapshot,
    so a consumer can both follow along and trust the last line as the
    final accounting.
    """

    def __init__(
        self, stream: Optional[TextIO] = None, min_interval: float = 0.0
    ) -> None:
        super().__init__(stream=stream, min_interval=min_interval)

    def emit(self, final: bool) -> None:
        payload = {"kind": "summary" if final else "progress"}
        payload.update(self.tracker.snapshot())
        self.stream.write(json.dumps(payload, sort_keys=True) + "\n")
        self.stream.flush()


def make_progress(
    mode: str = "auto",
    stream: Optional[TextIO] = None,
    min_interval: Optional[float] = None,
) -> ProgressReporter:
    """Build a reporter: ``"tty"``, ``"jsonl"``, or ``"auto"`` (TTY
    renderer when the stream is an interactive terminal, JSONL heartbeat
    otherwise -- so CI logs get parseable lines without any flag)."""
    stream = stream if stream is not None else sys.stderr
    if mode == "auto":
        mode = "tty" if getattr(stream, "isatty", lambda: False)() else "jsonl"
    if mode == "tty":
        return TtyProgress(
            stream, min_interval=0.1 if min_interval is None else min_interval
        )
    if mode == "jsonl":
        return JsonlHeartbeat(
            stream, min_interval=1.0 if min_interval is None else min_interval
        )
    raise ValueError(f"unknown progress mode {mode!r}")
