"""Hierarchical span tracing with dual DES/wall clocks.

A *span* is one timed region of campaign work -- campaign -> scenario ->
grid (one executor pass) -> cell (one RunSpec) -> engine phases (setup /
drain) -- carrying a wall-clock interval, an optional virtual-clock
interval (when the region owns a :class:`~repro.sim.engine.Simulator`),
and free-form attributes.  Spans nest: a :class:`SpanTracer` keeps an
open-span stack and every new span becomes a child of the innermost open
one, so a finished campaign yields a tree mirroring exactly where the
wall time went.

The contract with the hot paths mirrors the rest of the telemetry stack:

* instrumented code calls :func:`maybe_span`, which returns a shared
  no-op context manager when no tracer is active -- **no Span object is
  allocated on the disabled path** (asserted by the tests via
  ``Span.allocated``);
* spans are per-cell / per-phase, never per-packet or per-event, so the
  engine's dispatch loop is untouched.

Cross-process stitching: worker processes (the executor's spawn pool)
have no inherited telemetry.  The guarded worker entry point activates a
spans-only telemetry when the parent requests it, serializes the
resulting span tree (:meth:`Span.to_dict`) alongside the run's
observability payload, and the parent grafts it under its own open grid
span with :meth:`SpanTracer.adopt` when the result is settled -- so
``jobs=1`` and ``jobs=N`` produce equivalent trees (up to sibling order,
which follows completion order under a pool).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

from .runtime import get_active

__all__ = ["Span", "SpanTracer", "maybe_span", "NULL_SPAN"]


class Span:
    """One timed region: name, kind, dual clocks, attrs, children."""

    __slots__ = (
        "name",
        "kind",
        "attrs",
        "pid",
        "wall_start",
        "wall_end",
        "des_start",
        "des_end",
        "children",
    )

    allocated = 0
    """Class-level allocation counter.  Exists solely so tests can assert
    the disabled path allocates no spans; incremented in ``__init__``."""

    def __init__(self, name: str, kind: str = "phase", **attrs: Any) -> None:
        Span.allocated += 1
        self.name = name
        self.kind = kind
        self.attrs: Dict[str, Any] = attrs
        self.pid = os.getpid()
        self.wall_start: float = 0.0
        self.wall_end: Optional[float] = None
        self.des_start: Optional[float] = None
        self.des_end: Optional[float] = None
        self.children: List["Span"] = []

    # ------------------------------------------------------------- lifecycle

    def begin(self, clock: Any = None) -> "Span":
        """Stamp the start of the region; ``clock`` is anything with a
        ``.now`` virtual-time property (a Simulator)."""
        self.wall_start = perf_counter()
        if clock is not None:
            self.des_start = clock.now
        return self

    def end(self, clock: Any = None) -> "Span":
        self.wall_end = perf_counter()
        if clock is not None:
            self.des_end = clock.now
        return self

    # ------------------------------------------------------------ reporting

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    @property
    def des_seconds(self) -> Optional[float]:
        if self.des_start is None or self.des_end is None:
            return None
        return self.des_end - self.des_start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable nested dump (wall times as durations, so a
        tree stitched across processes stays meaningful -- perf_counter
        origins differ between processes)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "pid": self.pid,
            "wall_seconds": self.wall_seconds,
        }
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.des_seconds is not None:
            data["des_seconds"] = self.des_seconds
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a (finished) span tree from :meth:`to_dict` output."""
        span = cls(data["name"], data.get("kind", "phase"),
                   **data.get("attrs", {}))
        span.pid = data.get("pid", span.pid)
        span.wall_start = 0.0
        wall = data.get("wall_seconds")
        span.wall_end = wall if wall is not None else None
        des = data.get("des_seconds")
        if des is not None:
            span.des_start = 0.0
            span.des_end = des
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"children={len(self.children)})"
        )


class SpanTracer:
    """Owns one process's span forest and the open-span stack."""

    __slots__ = ("roots", "_stack")

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def current(self) -> Optional[Span]:
        """The innermost open span, or None at the top level."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self, name: str, kind: str = "phase", clock: Any = None, **attrs: Any
    ) -> Iterator[Span]:
        """Open a child of the current span for the enclosed block."""
        span = Span(name, kind, **attrs)
        parent = self.current()
        (parent.children if parent is not None else self.roots).append(span)
        self._stack.append(span)
        span.begin(clock)
        try:
            yield span
        finally:
            span.end(clock)
            self._stack.pop()

    def adopt(self, payloads: List[Dict[str, Any]]) -> None:
        """Graft serialized span trees (from a worker process or a cache
        sidecar) under the current span -- the stitching half of
        cross-process tracing."""
        target = self.current()
        bucket = target.children if target is not None else self.roots
        for payload in payloads:
            bucket.append(Span.from_dict(payload))

    # ------------------------------------------------------------ reporting

    def to_list(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.roots]

    def count(self) -> int:
        def walk(span: Span) -> int:
            return 1 + sum(walk(child) for child in span.children)

        return sum(walk(span) for span in self.roots)

    def max_depth(self) -> int:
        def depth(span: Span) -> int:
            if not span.children:
                return 1
            return 1 + max(depth(child) for child in span.children)

        return max((depth(span) for span in self.roots), default=0)

    def summary_line(self) -> str:
        return f"spans: {self.count()} recorded (max depth {self.max_depth()})"


class _NullSpan:
    """Shared, reentrant no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()


def maybe_span(name: str, kind: str = "phase", clock: Any = None, **attrs: Any):
    """A span on the active tracer, or the shared no-op when tracing is
    off.  The disabled cost is one active-telemetry load, one attribute
    read and a shared-singleton return -- nothing is allocated."""
    telemetry = get_active()
    if telemetry is None:
        return NULL_SPAN
    tracer = getattr(telemetry, "spans", None)
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, kind=kind, clock=clock, **attrs)
