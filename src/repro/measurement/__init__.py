"""RTT measurement: in-simulator probing and Table 1 statistics."""

from .prober import RttProber
from .stats import RttSummary, summarize_rtts

__all__ = ["RttProber", "RttSummary", "summarize_rtts"]
