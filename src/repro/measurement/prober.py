"""In-simulator RTT probing: the PingMesh / TCP-Probe stand-in.

Operators derive ECN thresholds from measured RTT distributions (Section
2.3: "operators get RTT distributions using tools such as PingMesh").  The
:class:`RttProber` measures base RTTs the same way the paper's Section 2.2
testbed does: sequential 1-byte request flows ("a new request is sent when
we receive the previous response"), each probe's sender-side completion time
being one base-RTT sample (the path is uncongested during probing).

Probes can traverse a :class:`~repro.netem.profiles.RttProfile` (per-probe
netem delay), in which case the measured distribution is the one thresholds
should be derived from -- closing the measure-then-configure loop entirely
inside the simulator.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..netem.profiles import RttProfile
from ..sim.network import Host, Network
from ..sim.packet import PacketFactory
from ..tcp.factory import FlowHandle, open_flow

__all__ = ["RttProber"]


class RttProber:
    """Sequential 1-byte request/response RTT measurement.

    Args:
        network: the wired network.
        factory: flow-id allocator.
        senders: hosts to probe from (round-robin).
        receiver: the probe target.
        n_probes: number of samples to collect.
        rng: randomness source (RTT profile sampling).
        rtt_profile: optional emulated base-RTT distribution; each probe
            samples one base RTT and installs the netem delta.
        network_rtt: physical RTT subtracted when computing the delta.
        delay_stage_of: maps sender host -> its delay stage (required with
            a profile).
    """

    def __init__(
        self,
        network: Network,
        factory: PacketFactory,
        senders: List[Host],
        receiver: Host,
        n_probes: int,
        rng: np.random.Generator,
        rtt_profile: Optional[RttProfile] = None,
        network_rtt: float = 0.0,
        delay_stage_of: Optional[Callable[[Host], object]] = None,
    ) -> None:
        if n_probes <= 0:
            raise ValueError("n_probes must be positive")
        if not senders:
            raise ValueError("need at least one probe sender")
        if rtt_profile is not None and delay_stage_of is None:
            raise ValueError("rtt_profile requires delay_stage_of")
        self.network = network
        self.factory = factory
        self.senders = senders
        self.receiver = receiver
        self.n_probes = n_probes
        self.rng = rng
        self.rtt_profile = rtt_profile
        self.network_rtt = network_rtt
        self.delay_stage_of = delay_stage_of
        self.samples: List[float] = []
        self._next_index = 0

    @property
    def done(self) -> bool:
        return len(self.samples) >= self.n_probes

    def start(self, at: float = 0.0) -> None:
        """Schedule the first probe; the rest chain off completions."""
        self.network.sim.schedule_at(at, self._launch_probe)

    def _launch_probe(self) -> None:
        if self.done:
            return
        sender = self.senders[self._next_index % len(self.senders)]
        self._next_index += 1

        stage = None
        if self.rtt_profile is not None:
            assert self.delay_stage_of is not None
            stage = self.delay_stage_of(sender)

        handle = open_flow(
            self.network,
            self.factory,
            sender,
            self.receiver,
            size_bytes=1,
            cc="reno",
        )

        def sender_complete(tcp_sender) -> None:
            # Sender-side FCT of a 1-byte flow = one round trip (the
            # response, here the final ACK, has come back).
            self.samples.append(tcp_sender.completion_time - tcp_sender.start_time)
            if stage is not None:
                stage.clear_flow(handle.flow_id)
            if not self.done:
                self._launch_probe()

        handle.sender.on_complete = sender_complete
        if stage is not None:
            assert self.rtt_profile is not None
            base_rtt = self.rtt_profile.sample_one(self.rng)
            stage.set_flow_delay(handle.flow_id, max(0.0, base_rtt - self.network_rtt))
