"""Summary statistics for RTT samples (the Table 1 columns)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["RttSummary", "summarize_rtts"]


@dataclass(frozen=True)
class RttSummary:
    """Mean / std / tail percentiles of an RTT sample set (seconds)."""

    n_samples: int
    mean: float
    std: float
    p50: float
    p90: float
    p99: float

    def as_microseconds(self) -> "RttSummary":
        """The same summary scaled to microseconds (Table 1's unit)."""
        return RttSummary(
            n_samples=self.n_samples,
            mean=self.mean * 1e6,
            std=self.std * 1e6,
            p50=self.p50 * 1e6,
            p90=self.p90 * 1e6,
            p99=self.p99 * 1e6,
        )


def summarize_rtts(samples: Sequence[float]) -> RttSummary:
    """Compute the Table 1 statistics for a set of RTT samples (seconds)."""
    if len(samples) == 0:
        raise ValueError("need at least one RTT sample")
    array = np.asarray(samples, dtype=float)
    if np.any(array < 0):
        raise ValueError("RTT samples cannot be negative")
    return RttSummary(
        n_samples=len(array),
        mean=float(np.mean(array)),
        std=float(np.std(array)),
        p50=float(np.percentile(array, 50)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
    )
